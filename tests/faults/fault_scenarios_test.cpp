// End-to-end fault scenarios: five distinct fault classes (link flap, random
// wire loss, probe-class loss, switch state reset, stale telemetry) driven
// through the FaultPlane against full uFAB fabrics.  Each scenario asserts
// the robustness invariants: guarantees hold within tolerance, no connection
// wedges, recovery completes within a bounded number of RTTs — and the whole
// run is deterministic under a fixed seed (FaultPlane.SameSeedReproduces...).
#include <gtest/gtest.h>

#include "tests/faults/fault_world.hpp"

namespace ufab::faults {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

/// A backlogged pair that delivers nothing over the final window is wedged.
void expect_not_wedged(FaultWorld& w, VmPairId pair, TimeNs end) {
  EXPECT_GT(w.pair_rate_gbps(pair, end - 5_ms, end), 0.05)
      << "pair " << pair.src.value() << "->" << pair.dst.value() << " wedged";
}

// --- fault class 1: link flap ----------------------------------------------

TEST(FaultScenario, LinkFlapMigratesAndRecovers) {
  // The current path's fabric links flap down for 8 ms.  Probe timeouts must
  // declare the path dead and migrate the pair to the surviving spine; when
  // the links return nothing may be left wedged.
  FaultWorld w([](sim::Simulator& s) { return topo::make_leaf_spine(s, 2, 2, 2); });
  const TenantId t = w.fab.vms().add_tenant("A", 2_Gbps);
  const VmPairId pair{w.fab.vms().add_vm(t, HostId{0}), w.fab.vms().add_vm(t, HostId{2})};
  w.fab.keep_backlogged(pair, 0_ms, 60_ms);

  // The initial path is picked at runtime; program the plane once known.
  w.fab.sim().at(10_ms, [&] {
    auto* conn = w.edge(HostId{0}).ufab_connection(pair);
    ASSERT_NE(conn, nullptr);
    const auto& path = conn->current_path();
    for (std::size_t i = 1; i + 1 < path.links.size(); ++i) {
      w.plane.flap(path.links[i], 12_ms, 20_ms);
    }
    w.plane.arm();
  });
  w.fab.sim().run_until(60_ms);

  EXPECT_EQ(w.plane.counters().link_downs, 2);
  EXPECT_EQ(w.plane.counters().link_ups, 2);
  EXPECT_GE(w.edge(HostId{0}).migrations(), 1);
  EXPECT_GE(w.edge(HostId{0}).probe_timeouts(), 1);
  // Bounded recovery: well before the links even came back, the pair should
  // be at full rate on the surviving spine.
  EXPECT_GT(w.pair_rate_gbps(pair, 16_ms, 20_ms), 6.0);
  EXPECT_GT(w.pair_rate_gbps(pair, 40_ms, 60_ms), 8.0);
  expect_not_wedged(w, pair, 60_ms);
  for (const auto* l : w.fab.net().links()) EXPECT_FALSE(l->down()) << l->name();
}

// --- fault class 2: random wire loss ---------------------------------------

TEST(FaultScenario, RandomWireLossKeepsGuarantees) {
  // 1% Bernoulli loss on the shared trunk for the whole run.  RTO-driven
  // retransmission plus probe backoff must keep both tenants at (near) their
  // guarantees; nobody wedges.
  FaultWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  auto& vms = w.fab.vms();
  const TenantId big = vms.add_tenant("big", 4_Gbps);
  const TenantId small = vms.add_tenant("small", 2_Gbps);
  const VmPairId p1{vms.add_vm(big, HostId{0}), vms.add_vm(big, HostId{2})};
  const VmPairId p2{vms.add_vm(small, HostId{1}), vms.add_vm(small, HostId{3})};
  const LinkId trunk = w.fab.net().paths(HostId{0}, HostId{2})[0].links[1];
  w.plane.loss(trunk, 0.01).arm();
  w.fab.keep_backlogged(p1, 0_ms, 60_ms);
  w.fab.keep_backlogged(p2, 0_ms, 60_ms);
  w.fab.sim().run_until(60_ms);

  EXPECT_GT(w.plane.counters().loss_drops, 100);
  EXPECT_GT(w.edge(HostId{0}).retransmits() + w.edge(HostId{1}).retransmits(), 0);
  // Guarantee-share tolerance despite the lossy trunk.
  const double r1 = w.pair_rate_gbps(p1, 30_ms, 60_ms);
  const double r2 = w.pair_rate_gbps(p2, 30_ms, 60_ms);
  EXPECT_GT(r1, 4.0 * 0.8);
  EXPECT_GT(r2, 2.0 * 0.8);
  EXPECT_GT(r1 + r2, 7.5);
  expect_not_wedged(w, p1, 60_ms);
  expect_not_wedged(w, p2, 60_ms);
}

// --- fault class 3: probe-class loss ---------------------------------------

TEST(FaultScenario, ProbeClassLossDegradesGracefully) {
  // All probe-family packets on the trunk die for 20 ms while data passes
  // untouched.  The edge must keep the last admitted window (data flows on),
  // retransmit probes with backoff, and snap back when probes heal.
  FaultWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  const TenantId t = w.fab.vms().add_tenant("A", 2_Gbps);
  const VmPairId pair{w.fab.vms().add_vm(t, HostId{0}), w.fab.vms().add_vm(t, HostId{2})};
  const LinkId trunk = w.fab.net().paths(HostId{0}, HostId{2})[0].links[1];
  w.plane.loss(trunk, 1.0, LossClass::kProbeOnly, 20_ms, 40_ms).arm();
  w.fab.keep_backlogged(pair, 0_ms, 60_ms);
  w.fab.sim().run_until(60_ms);

  EXPECT_GT(w.plane.counters().loss_drops, 0);
  EXPECT_GE(w.edge(HostId{0}).probe_timeouts(), 3);
  EXPECT_GE(w.edge(HostId{0}).probe_retransmits(), 1);
  // Data was never dropped: all trunk losses were probe-family packets.
  EXPECT_EQ(w.fab.net().link(trunk)->fault_drops(), w.plane.counters().loss_drops);
  EXPECT_GT(w.pair_rate_gbps(pair, 5_ms, 20_ms), 8.5);   // converged before
  EXPECT_GT(w.pair_rate_gbps(pair, 22_ms, 40_ms), 8.0);  // window held during
  EXPECT_GT(w.pair_rate_gbps(pair, 45_ms, 60_ms), 8.5);  // recovered after
  expect_not_wedged(w, pair, 60_ms);
}

// --- fault class 4: switch state reset -------------------------------------

TEST(FaultScenario, SwitchResetReregistersAndReconverges) {
  // A warm reboot wipes the left ToR's registers and Bloom filter under three
  // competing tenants.  The edges must detect the Φ_l discontinuity, hold the
  // guarantee-only window, and re-register — rebuilding the registers within
  // a bounded number of RTTs, with no manual intervention.
  FaultWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 3, 3); });
  auto& vms = w.fab.vms();
  std::vector<VmPairId> pairs;
  for (int i = 0; i < 3; ++i) {
    const TenantId t = vms.add_tenant("T" + std::to_string(i), 2_Gbps);
    pairs.push_back(VmPairId{vms.add_vm(t, HostId{i}), vms.add_vm(t, HostId{3 + i})});
    w.fab.keep_backlogged(pairs.back(), 0_ms, 60_ms);
  }
  const NodeId tor_l = w.fab.net().paths(HostId{0}, HostId{3})[0].switches[0];
  w.plane.reset_switch_state(tor_l, 25_ms).arm();

  double phi_before = 0.0, phi_rebuilt = -1.0;
  w.fab.sim().at(TimeNs{24'900'000}, [&] { phi_before = w.phi_on_switch(tor_l); });
  // Bounded recovery: the registers are rebuilt from re-registration probes
  // within 0.5 ms of the reset (~30 base RTTs on this fabric).
  w.fab.sim().at(TimeNs{25'500'000}, [&] { phi_rebuilt = w.phi_on_switch(tor_l); });
  w.fab.sim().run_until(60_ms);

  EXPECT_EQ(w.plane.counters().switch_resets, 1);
  EXPECT_GT(phi_before, 0.0);
  EXPECT_GE(phi_rebuilt, 0.9 * phi_before);
  std::int64_t detections = 0, reregs = 0;
  for (int i = 0; i < 3; ++i) {
    detections += w.edge(HostId{i}).state_losses_detected();
    reregs += w.edge(HostId{i}).reregistrations();
  }
  EXPECT_GE(detections, 1);
  EXPECT_GE(reregs, 1);
  // Every tenant re-converges near its fair share of the trunk.
  for (const auto& p : pairs) {
    EXPECT_GT(w.pair_rate_gbps(p, 40_ms, 60_ms), 9.5 / 3.0 * 0.8);
    expect_not_wedged(w, p, 60_ms);
  }
}

// --- fault class 5: stale telemetry ----------------------------------------

TEST(FaultScenario, StaleTelemetryFallsBackToGuarantee) {
  // Both ToRs freeze their INT stamps for 15 ms (wedged switch clocks): the
  // edge must detect the staleness and degrade to the guarantee-only window
  // instead of feeding frozen registers into Eqns 1-3, then recover fully.
  FaultWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  const TenantId t = w.fab.vms().add_tenant("A", 2_Gbps);
  const VmPairId pair{w.fab.vms().add_vm(t, HostId{0}), w.fab.vms().add_vm(t, HostId{2})};
  const auto& path = w.fab.net().paths(HostId{0}, HostId{2})[0];
  w.plane.stale_telemetry(path.switches[0], 20_ms, 35_ms)
      .stale_telemetry(path.switches[1], 20_ms, 35_ms)
      .arm();
  w.fab.keep_backlogged(pair, 0_ms, 60_ms);
  w.fab.sim().run_until(60_ms);

  EXPECT_GT(w.plane.counters().stale_records, 0);
  EXPECT_GE(w.edge(HostId{0}).stale_telemetry_events(), 1);
  EXPECT_GE(w.edge(HostId{0}).guarantee_degradations(), 1);
  // Degraded to (roughly) the 2 Gbps guarantee while telemetry is untrusted:
  // the guarantee still holds, work conservation is deliberately given up.
  const double degraded = w.pair_rate_gbps(pair, 25_ms, 35_ms);
  EXPECT_GT(degraded, 2.0 * 0.6);
  EXPECT_LT(degraded, 4.5);
  // Full work-conserving rate before and after the fault window.
  EXPECT_GT(w.pair_rate_gbps(pair, 5_ms, 20_ms), 8.5);
  EXPECT_GT(w.pair_rate_gbps(pair, 45_ms, 60_ms), 8.5);
  expect_not_wedged(w, pair, 60_ms);
}

// --- bonus class: register corruption --------------------------------------

TEST(FaultScenario, CorruptedRegistersTriggerStateLossGuard) {
  // A switch scales its Φ_l/W_l records to 5% of truth for 2 ms.  The Φ_l
  // discontinuity detector must treat it as state loss and hold the
  // guarantee-only window rather than admitting an inflated share.
  FaultWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  auto& vms = w.fab.vms();
  const TenantId big = vms.add_tenant("big", 4_Gbps);
  const TenantId small = vms.add_tenant("small", 2_Gbps);
  const VmPairId p1{vms.add_vm(big, HostId{0}), vms.add_vm(big, HostId{2})};
  const VmPairId p2{vms.add_vm(small, HostId{1}), vms.add_vm(small, HostId{3})};
  const NodeId tor_l = w.fab.net().paths(HostId{0}, HostId{2})[0].switches[0];
  w.plane.corrupt_telemetry(tor_l, 0.05, 20_ms, 22_ms).arm();
  w.fab.keep_backlogged(p1, 0_ms, 60_ms);
  w.fab.keep_backlogged(p2, 0_ms, 60_ms);
  w.fab.sim().run_until(60_ms);

  EXPECT_GT(w.plane.counters().corrupted_records, 0);
  EXPECT_GE(w.edge(HostId{0}).state_losses_detected() + w.edge(HostId{1}).state_losses_detected(),
            1);
  // The guard kept queues bounded through the corruption window.
  for (const auto* l : w.fab.net().links()) EXPECT_EQ(l->drops(), 0) << l->name();
  // Both tenants back at their guarantees afterwards.
  EXPECT_GT(w.pair_rate_gbps(p1, 40_ms, 60_ms), 4.0 * 0.85);
  EXPECT_GT(w.pair_rate_gbps(p2, 40_ms, 60_ms), 2.0 * 0.85);
}

}  // namespace
}  // namespace ufab::faults

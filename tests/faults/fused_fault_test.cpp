// Fused link pipelines under fault injection (DESIGN.md §13): a flap schedule
// must produce identical recovery behaviour whether the engine runs the fused
// or the legacy serializer, on any partition.  The fault plane pins flapped
// links back to the legacy path on every partition (a fused cut link's
// eagerly posted crossings could not be recalled by set_down), so the pin
// itself must be schedule-neutral.
#include <cstdlib>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "tests/faults/fault_world.hpp"

namespace ufab::faults {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

/// Scoped setenv, restored on destruction.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

struct FlapOutcome {
  std::int64_t link_downs = 0;
  std::int64_t drops = 0;
  double rate_during = 0.0;
  double rate_after = 0.0;
  std::uint64_t events = 0;

  bool operator==(const FlapOutcome&) const = default;
};

/// A backlogged pair across a leaf-spine whose ToR uplink flaps repeatedly
/// mid-stream; shards > 0 switches the engine into canonical sharded mode
/// (which is what makes the fused path eligible at all), and at 2 shards the
/// flapped uplink is a cut link — the case the fault plane's pin protects.
FlapOutcome run_flap_scenario(bool fused, int shards) {
  EnvGuard g("UFAB_FUSED_LINKS", fused ? nullptr : "0");
  FaultWorld w([](sim::Simulator& s) { return topo::make_leaf_spine(s, 2, 2, 2); }, {},
               fault_test_core_config(), 7, 42, shards);
  const TenantId t = w.fab.vms().add_tenant("A", 2_Gbps);
  const VmPairId pair{w.fab.vms().add_vm(t, HostId{0}), w.fab.vms().add_vm(t, HostId{2})};
  w.fab.keep_backlogged(pair, 0_ms, 30_ms);
  // uFAB source-routes the pair over one of the two spines; flap both ToR-0
  // uplinks so the outage hits the chosen trunk regardless of which spine the
  // edge picked.  The plane pins both to the legacy serializer at arm time
  // (before any traffic), while every other link stays fused.  Three 1 ms
  // outages, one per 4 ms period, each aborting in-flight serializations.
  const auto paths = w.fab.net().paths(HostId{0}, HostId{2});
  const LinkId up0 = paths[0].links[1];
  const LinkId up1 = paths[1].links[1];
  w.plane.flap(up0, 5_ms, 6_ms, 3, 4_ms);
  w.plane.flap(up1, 5_ms, 6_ms, 3, 4_ms);
  w.plane.arm();
  w.fab.sim().run_until(30_ms);

  FlapOutcome out;
  out.link_downs = w.plane.counters().link_downs;
  out.drops = w.fab.net().link(up0)->drops() + w.fab.net().link(up1)->drops();
  out.rate_during = w.pair_rate_gbps(pair, 5_ms, 17_ms);
  out.rate_after = w.pair_rate_gbps(pair, 20_ms, 30_ms);
  out.events = w.fab.sim().events_processed();
  return out;
}

TEST(FusedFaults, FlapRecoveryIdenticalAcrossSerializersAndPartitions) {
  const FlapOutcome legacy = run_flap_scenario(false, 1);
  ASSERT_EQ(legacy.link_downs, 6);
  EXPECT_GT(legacy.drops, 0);           // the flap aborted live traffic
  EXPECT_GT(legacy.rate_after, 1.5);    // and the pair recovered
  // The flapped trunk is pinned to the legacy serializer, but every other
  // link still fuses — all observables must nonetheless match bit for bit.
  const FlapOutcome fused = run_flap_scenario(true, 1);
  EXPECT_EQ(fused.link_downs, legacy.link_downs);
  EXPECT_EQ(fused.drops, legacy.drops);
  EXPECT_EQ(fused.rate_during, legacy.rate_during);
  EXPECT_EQ(fused.rate_after, legacy.rate_after);
  EXPECT_LT(fused.events, legacy.events);

  // Partition-invariance with faults armed: the pin applies on every
  // partition, so event counts and statistics stay bit-identical.
  const FlapOutcome fused2 = run_flap_scenario(true, 2);
  EXPECT_EQ(fused2, fused);
  const FlapOutcome legacy2 = run_flap_scenario(false, 2);
  EXPECT_EQ(legacy2, legacy);
}

}  // namespace
}  // namespace ufab::faults

// FaultPlane mechanics: flap schedules, loss windows, switch resets, INT
// tampering, Bloom saturation, and exact reproducibility under a fixed seed.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "tests/faults/fault_world.hpp"

namespace ufab::faults {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

TEST(FaultPlane, FlapScheduleExecutesAndCounts) {
  harness::Fabric fab([](sim::Simulator& s) { return topo::make_dumbbell(s, 1, 1); });
  const LinkId trunk = fab.net().paths(HostId{0}, HostId{1})[0].links[1];
  sim::Link* link = fab.net().link(trunk);
  FaultPlane plane(fab);
  plane.flap(trunk, 1_ms, 2_ms, /*repeats=*/3, /*period=*/4_ms).arm();
  // Down during [1,2), [5,6), [9,10) ms; up otherwise.
  const std::vector<std::pair<TimeNs, bool>> expect = {
      {TimeNs{500'000}, false},   {TimeNs{1'500'000}, true}, {TimeNs{2'500'000}, false},
      {TimeNs{5'500'000}, true},  {TimeNs{6'500'000}, false}, {TimeNs{9'500'000}, true},
      {TimeNs{10'500'000}, false}};
  for (const auto& [at, down] : expect) {
    fab.sim().at(at, [link, want = down, at = at] {
      EXPECT_EQ(link->down(), want) << "at " << at.ns() << " ns";
    });
  }
  fab.sim().run_until(11_ms);
  EXPECT_TRUE(plane.armed());
  EXPECT_EQ(plane.counters().link_downs, 3);
  EXPECT_EQ(plane.counters().link_ups, 3);
}

TEST(FaultPlane, LossWindowBoundsTheDamage) {
  // 100% wire loss on the trunk, but only within [5, 10) ms: nothing drops
  // before, nothing drops after, and the pair recovers to full rate.
  FaultWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  const TenantId t = w.fab.vms().add_tenant("A", 2_Gbps);
  const VmPairId pair{w.fab.vms().add_vm(t, HostId{0}), w.fab.vms().add_vm(t, HostId{2})};
  const LinkId trunk = w.fab.net().paths(HostId{0}, HostId{2})[0].links[1];
  w.plane.loss(trunk, 1.0, LossClass::kAll, 5_ms, 10_ms).arm();
  w.fab.keep_backlogged(pair, 0_ms, 30_ms);

  std::int64_t drops_at_start = -1, drops_at_end = -1;
  w.fab.sim().at(5_ms, [&] { drops_at_start = w.plane.counters().loss_drops; });
  w.fab.sim().at(11_ms, [&] { drops_at_end = w.plane.counters().loss_drops; });
  w.fab.sim().run_until(30_ms);

  EXPECT_EQ(drops_at_start, 0);
  EXPECT_GT(drops_at_end, 0);
  EXPECT_EQ(w.plane.counters().loss_drops, drops_at_end);  // window closed
  EXPECT_EQ(w.fab.net().link(trunk)->fault_drops(), w.plane.counters().loss_drops);
  // Recovery after the window: retransmissions refill and probing resumes.
  EXPECT_GT(w.pair_rate_gbps(pair, 20_ms, 30_ms), 8.0);
}

TEST(FaultPlane, ResetClearsAndRebuildsRegisters) {
  FaultWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  const TenantId t = w.fab.vms().add_tenant("A", 2_Gbps);
  const VmPairId pair{w.fab.vms().add_vm(t, HostId{0}), w.fab.vms().add_vm(t, HostId{2})};
  const NodeId tor_l = w.fab.net().paths(HostId{0}, HostId{2})[0].switches[0];
  w.plane.reset_switch_state(tor_l, 10_ms).arm();
  w.fab.keep_backlogged(pair, 0_ms, 40_ms);

  double phi_before = 0.0, phi_after = -1.0;
  w.fab.sim().at(TimeNs{9'900'000}, [&] { phi_before = w.phi_on_switch(tor_l); });
  w.fab.sim().at(TimeNs{10'000'200}, [&] { phi_after = w.phi_on_switch(tor_l); });
  w.fab.sim().run_until(40_ms);

  EXPECT_GT(phi_before, 0.0);
  EXPECT_DOUBLE_EQ(phi_after, 0.0);  // wiped at the reset instant
  EXPECT_EQ(w.plane.counters().switch_resets, 1);
  std::int64_t resets = 0;
  for (const auto* a : w.fab.core_agents_of(tor_l)) resets += a->resets();
  EXPECT_EQ(resets, static_cast<std::int64_t>(w.fab.core_agents_of(tor_l).size()));
  // Re-registration probes rebuilt the registers without manual intervention.
  EXPECT_NEAR(w.phi_on_switch(tor_l), phi_before, phi_before * 0.3);
}

TEST(FaultPlane, BloomSaturationCausesFalsePositiveOmissions) {
  // Junk keys drive the Bloom false-positive rate up; a pair joining after
  // saturation is omitted from the registers (§3.6: safe, shares run larger)
  // but still gets full service.
  FaultWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  const TenantId t = w.fab.vms().add_tenant("A", 2_Gbps);
  const VmPairId pair{w.fab.vms().add_vm(t, HostId{0}), w.fab.vms().add_vm(t, HostId{2})};
  const NodeId tor_l = w.fab.net().paths(HostId{0}, HostId{2})[0].switches[0];
  w.plane.saturate_bloom(tor_l, 400'000, 1_ms).arm();
  w.fab.keep_backlogged(pair, 2_ms, 20_ms);
  w.fab.sim().run_until(20_ms);

  const auto agents = w.fab.core_agents_of(tor_l);
  std::int64_t omissions = 0;
  for (const auto* a : agents) omissions += a->false_positive_omissions();
  EXPECT_GE(omissions, 1);
  EXPECT_EQ(w.plane.counters().bloom_junk_keys,
            static_cast<std::int64_t>(400'000 * agents.size()));
  EXPECT_GT(w.pair_rate_gbps(pair, 10_ms, 20_ms), 8.0);
}

TEST(FaultPlane, StripTelemetrySuppressesRecords) {
  FaultWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); });
  const TenantId t = w.fab.vms().add_tenant("A", 2_Gbps);
  const VmPairId pair{w.fab.vms().add_vm(t, HostId{0}), w.fab.vms().add_vm(t, HostId{2})};
  const NodeId tor_l = w.fab.net().paths(HostId{0}, HostId{2})[0].switches[0];
  w.plane.strip_telemetry(tor_l, 10_ms, 15_ms).arm();
  w.fab.keep_backlogged(pair, 0_ms, 40_ms);
  w.fab.sim().run_until(40_ms);

  EXPECT_GT(w.plane.counters().stripped_records, 0);
  std::int64_t suppressed = 0;
  for (const auto* a : w.fab.core_agents_of(tor_l)) suppressed += a->suppressed_records();
  EXPECT_EQ(suppressed, w.plane.counters().stripped_records);
  // The edge keeps operating on the remaining links' records: no collapse
  // during the strip window, full rate after it.
  EXPECT_GT(w.pair_rate_gbps(pair, 10_ms, 15_ms), 6.0);
  EXPECT_GT(w.pair_rate_gbps(pair, 25_ms, 40_ms), 8.5);
}

TEST(FaultPlane, SameSeedReproducesByteForByte) {
  struct Outcome {
    std::int64_t loss_drops;
    std::int64_t trunk_tx;
    std::int64_t probe_timeouts;
    double rate;
  };
  auto run = [](std::uint64_t fault_seed) {
    FaultWorld w([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); },
                 edge::EdgeConfig{}, fault_test_core_config(), /*seed=*/7, fault_seed);
    const TenantId ta = w.fab.vms().add_tenant("A", 4_Gbps);
    const TenantId tb = w.fab.vms().add_tenant("B", 2_Gbps);
    const VmPairId pa{w.fab.vms().add_vm(ta, HostId{0}), w.fab.vms().add_vm(ta, HostId{2})};
    const VmPairId pb{w.fab.vms().add_vm(tb, HostId{1}), w.fab.vms().add_vm(tb, HostId{3})};
    const LinkId trunk = w.fab.net().paths(HostId{0}, HostId{2})[0].links[1];
    w.plane.loss(trunk, 0.02, LossClass::kAll, 2_ms, 30_ms).arm();
    w.fab.keep_backlogged(pa, 0_ms, 30_ms);
    w.fab.keep_backlogged(pb, 0_ms, 30_ms);
    w.fab.sim().run_until(30_ms);
    return Outcome{w.plane.counters().loss_drops, w.fab.net().link(trunk)->tx_bytes_cum(),
                   w.edge(HostId{0}).probe_timeouts() + w.edge(HostId{1}).probe_timeouts(),
                   w.pair_rate_gbps(pa, 10_ms, 30_ms)};
  };
  const Outcome a = run(42);
  const Outcome b = run(42);
  EXPECT_GT(a.loss_drops, 0);
  EXPECT_EQ(a.loss_drops, b.loss_drops);
  EXPECT_EQ(a.trunk_tx, b.trunk_tx);
  EXPECT_EQ(a.probe_timeouts, b.probe_timeouts);
  EXPECT_DOUBLE_EQ(a.rate, b.rate);
}

}  // namespace
}  // namespace ufab::faults

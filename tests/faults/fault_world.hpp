// Shared fixture for fault-injection tests: a uFAB fabric with edge agents on
// every host plus a FaultPlane targeting it.  Tests program the plane (often
// from a scheduled event, once runtime state like the chosen path is known)
// and then assert on both sides of the ledger: the plane's injected-fault
// counters and the edges' recovery counters.
#pragma once

#include <memory>

#include "src/faults/fault_plane.hpp"
#include "src/harness/fabric.hpp"
#include "src/topo/builders.hpp"
#include "src/ufab/edge_agent.hpp"

namespace ufab::faults {

inline telemetry::CoreConfig fault_test_core_config() {
  telemetry::CoreConfig cfg;
  cfg.clean_period = TimeNs{1'000'000'000};  // sweeps idle unless a test opts in
  return cfg;
}

struct FaultWorld {
  harness::Fabric fab;
  FaultPlane plane;

  /// `shards` > 0 switches the engine into canonical sharded mode before any
  /// instrumentation schedules events (configure_sharding must come first).
  explicit FaultWorld(const harness::Fabric::Builder& builder, edge::EdgeConfig cfg = {},
                      telemetry::CoreConfig core = fault_test_core_config(),
                      std::uint64_t seed = 7, std::uint64_t fault_seed = 42, int shards = 0)
      : fab(builder, seed), plane(fab, fault_seed) {
    if (shards > 0) fab.configure_sharding(shards, sim::ShardExec::kSequential);
    fab.instrument_cores(core);
    for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
      const HostId host{static_cast<std::int32_t>(h)};
      fab.adopt_stack(host,
                      std::make_unique<edge::EdgeAgent>(fab.net(), fab.vms(), host, cfg,
                                                        transport::TransportOptions{},
                                                        fab.rng().fork(h)));
    }
    fab.install_pair_metering(TimeNs{1'000'000});
  }

  edge::EdgeAgent& edge(HostId h) { return fab.stack_as<edge::EdgeAgent>(h); }

  /// Average delivered rate of `pair` over [from, to), in Gbps.
  double pair_rate_gbps(VmPairId pair, TimeNs from, TimeNs to) {
    RateMeter* m = fab.pair_meter(pair);
    if (m == nullptr) return 0.0;
    double bytes = 0.0;
    for (const auto& s : m->series(to)) {
      if (s.at >= from && s.at < to) bytes += s.rate.bytes_per_sec() * m->bucket_width().sec();
    }
    return bytes * 8.0 / 1e9 / (to - from).sec();
  }

  /// Sum of Φ_l over every uFAB-C agent on `sw`.
  double phi_on_switch(NodeId sw) {
    double total = 0.0;
    for (const auto* a : fab.core_agents_of(sw)) total += a->phi_total();
    return total;
  }

  double total_phi() {
    double total = 0.0;
    for (const auto& a : fab.core_agents()) total += a->phi_total();
    return total;
  }
};

}  // namespace ufab::faults

// Unit tests for the informative core: Bloom filter and CoreAgent registers.
#include <gtest/gtest.h>

#include "src/sim/link.hpp"
#include "src/sim/node.hpp"
#include "src/telemetry/bloom.hpp"
#include "src/telemetry/core_agent.hpp"

namespace ufab::telemetry {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

TEST(Bloom, InsertContainsRemove) {
  CountingBloomFilter bloom;
  EXPECT_FALSE(bloom.maybe_contains(42));
  bloom.insert(42);
  EXPECT_TRUE(bloom.maybe_contains(42));
  bloom.remove(42);
  EXPECT_FALSE(bloom.maybe_contains(42));
}

TEST(Bloom, NoFalseNegatives) {
  CountingBloomFilter bloom;
  for (std::uint64_t k = 0; k < 5000; ++k) bloom.insert(k * 977 + 13);
  for (std::uint64_t k = 0; k < 5000; ++k) EXPECT_TRUE(bloom.maybe_contains(k * 977 + 13));
}

TEST(Bloom, FalsePositiveRateAtPaperScale) {
  // 20 KB (1-bit cells) / 2 banks with 20K pairs stays under ~5% (§4.2).
  CountingBloomFilter bloom(BloomConfig{163'840, 2});
  for (std::uint64_t k = 0; k < 20'000; ++k) bloom.insert(k * 2654435761ULL + 1);
  int fp = 0;
  const int probes = 20'000;
  for (int i = 0; i < probes; ++i) {
    // Keys disjoint from the inserted set.
    if (bloom.maybe_contains(0xdead000000ULL + static_cast<std::uint64_t>(i))) ++fp;
  }
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, 0.08);
  EXPECT_NEAR(bloom.false_positive_rate(), rate, 0.05);
}

TEST(Bloom, CountingSurvivesSharedSlots) {
  CountingBloomFilter bloom(BloomConfig{64, 2});  // tiny: forced collisions
  for (std::uint64_t k = 0; k < 40; ++k) bloom.insert(k);
  for (std::uint64_t k = 0; k < 20; ++k) bloom.remove(k);
  // The remaining 20 keys must still be present (no false negatives from
  // removal of colliding keys thanks to counters).
  int present = 0;
  for (std::uint64_t k = 20; k < 40; ++k) present += bloom.maybe_contains(k) ? 1 : 0;
  EXPECT_EQ(present, 20);
}

// --- CoreAgent ---

class NullNode : public sim::Node {
 public:
  NullNode() : Node(NodeId{0}, "null") {}
  void receive(sim::PacketPtr) override {}
};

sim::PacketPtr make_probe(std::uint64_t reg_key, double phi, double window) {
  auto p = sim::Packet::make(sim::PacketKind::kProbe, VmPairId{VmId{1}, VmId{2}}, TenantId{0},
                             HostId{0}, HostId{1}, sim::kProbeBaseBytes);
  p->probe.reg_key = reg_key;
  p->probe.phi = phi;
  p->probe.window = window;
  return p;
}

struct AgentFixture : ::testing::Test {
  sim::Simulator sim;
  NullNode sink;
  sim::Link link{sim, LinkId{0}, "l", &sink, sim::LinkConfig{10_Gbps, 1_us, 2'000'000, -1, 0.95}};
  CoreConfig cfg;
  AgentFixture() { cfg.clean_period = 1_s; }
};

TEST_F(AgentFixture, RegistersNewPairAndWritesInt) {
  CoreAgent agent(sim, cfg);
  auto p = make_probe(111, 2e9, 30'000);
  agent.on_probe_egress(*p, link, sim.now());
  EXPECT_DOUBLE_EQ(agent.phi_total(), 2e9);
  EXPECT_DOUBLE_EQ(agent.window_total(), 30'000);
  ASSERT_EQ(p->telemetry.size(), 1u);
  EXPECT_DOUBLE_EQ(p->telemetry[0].phi_total, 2e9);
  EXPECT_DOUBLE_EQ(p->telemetry[0].window_total, 30'000);
  EXPECT_EQ(p->telemetry[0].queue_bytes, 0);
  EXPECT_DOUBLE_EQ(p->telemetry[0].capacity.gbit_per_sec(), 10.0);
}

TEST_F(AgentFixture, DeltaUpdatesOnRepeatedProbes) {
  CoreAgent agent(sim, cfg);
  auto p1 = make_probe(111, 2e9, 30'000);
  agent.on_probe_egress(*p1, link, sim.now());
  auto p2 = make_probe(111, 3e9, 10'000);
  agent.on_probe_egress(*p2, link, sim.now());
  EXPECT_DOUBLE_EQ(agent.phi_total(), 3e9);
  EXPECT_DOUBLE_EQ(agent.window_total(), 10'000);
  EXPECT_EQ(agent.active_pairs(), 1u);
}

TEST_F(AgentFixture, AggregatesDistinctPairs) {
  CoreAgent agent(sim, cfg);
  for (int i = 0; i < 10; ++i) {
    auto p = make_probe(1000 + static_cast<std::uint64_t>(i), 1e9, 1000);
    agent.on_probe_egress(*p, link, sim.now());
  }
  EXPECT_DOUBLE_EQ(agent.phi_total(), 1e10);
  EXPECT_DOUBLE_EQ(agent.window_total(), 10'000);
  EXPECT_EQ(agent.active_pairs(), 10u);
}

TEST_F(AgentFixture, FinishProbeDeregistersAndAcks) {
  CoreAgent agent(sim, cfg);
  auto p = make_probe(77, 5e9, 12'000);
  agent.on_probe_egress(*p, link, sim.now());
  auto fin = make_probe(77, 0, 0);
  fin->kind = sim::PacketKind::kFinishProbe;
  agent.on_probe_egress(*fin, link, sim.now());
  EXPECT_DOUBLE_EQ(agent.phi_total(), 0.0);
  EXPECT_DOUBLE_EQ(agent.window_total(), 0.0);
  EXPECT_EQ(fin->probe.finish_acks, 1);
  EXPECT_EQ(agent.active_pairs(), 0u);
  // Finish for an unknown pair still acks (idempotent).
  auto fin2 = make_probe(77, 0, 0);
  fin2->kind = sim::PacketKind::kFinishProbe;
  agent.on_probe_egress(*fin2, link, sim.now());
  EXPECT_EQ(fin2->probe.finish_acks, 1);
}

TEST_F(AgentFixture, SweepRemovesSilentPairs) {
  CoreAgent agent(sim, cfg);
  auto p = make_probe(55, 1e9, 1000);
  agent.on_probe_egress(*p, link, sim.now());
  EXPECT_EQ(agent.active_pairs(), 1u);
  // Pair 55 stays silent; pair 56 keeps probing.
  sim.after(500'000'000_ns * 1, [&] {
    auto q = make_probe(56, 2e9, 2000);
    agent.on_probe_egress(*q, link, sim.now());
  });
  sim.run_until(1500_ms);
  // After one sweep (1 s period): 55 aged out, 56 survives until its own age.
  EXPECT_EQ(agent.active_pairs(), 1u);
  EXPECT_DOUBLE_EQ(agent.phi_total(), 2e9);
}

TEST_F(AgentFixture, BloomFalsePositiveOmitsPair) {
  // With use_bloom and a tiny filter, saturate it so new pairs collide.
  cfg.use_bloom = true;
  cfg.bloom = BloomConfig{8, 2};
  CoreAgent agent(sim, cfg);
  for (std::uint64_t k = 1; k <= 50; ++k) {
    auto p = make_probe(k, 1e9, 1000);
    agent.on_probe_egress(*p, link, sim.now());
  }
  // With 8 counters and 50 keys, most later inserts hit saturated slots and
  // are treated as "seen" without a register entry => omissions counted and
  // registers smaller than the 50e9 truth.
  EXPECT_GT(agent.false_positive_omissions(), 0);
  EXPECT_LT(agent.phi_total(), 50e9);
}

TEST_F(AgentFixture, ExactModeNeverOmits) {
  cfg.use_bloom = false;
  CoreAgent agent(sim, cfg);
  for (std::uint64_t k = 1; k <= 500; ++k) {
    auto p = make_probe(k, 1e9, 1000);
    agent.on_probe_egress(*p, link, sim.now());
  }
  EXPECT_EQ(agent.false_positive_omissions(), 0);
  EXPECT_DOUBLE_EQ(agent.phi_total(), 500e9);
}

}  // namespace
}  // namespace ufab::telemetry

// Tests for the Appendix-G INT wire codec, including an end-to-end check
// that uFAB still converges when telemetry is wire-quantized.
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/fabric.hpp"
#include "src/telemetry/int_codec.hpp"
#include "src/topo/builders.hpp"
#include "src/ufab/edge_agent.hpp"

namespace ufab::telemetry {
namespace {

using namespace ufab::time_literals;
using namespace ufab::unit_literals;

sim::IntRecord sample_record() {
  sim::IntRecord rec;
  rec.link = LinkId{3};
  rec.phi_total = 6.4e9;              // 6.4 Gbps of tokens
  rec.window_total = 1.2e9 / 8.0;     // 1.2 Gbps claimed, in bytes/s
  rec.tx_rate_hint = Bandwidth::gbps(7.5);
  rec.queue_bytes = 35'000;
  rec.capacity = Bandwidth::gbps(10);
  rec.stamp = 5_us;
  rec.tx_bytes_cum = 123456;
  return rec;
}

TEST(IntCodec, RoundTripWithinUnitError) {
  const auto rec = sample_record();
  const auto enc = IntCodec::encode(rec);
  const auto dec = IntCodec::decode(enc, rec.link, rec.stamp);
  EXPECT_NEAR(dec.phi_total, rec.phi_total, IntCodec::kRateUnitBps);
  EXPECT_NEAR(dec.window_total * 8.0, rec.window_total * 8.0, IntCodec::kRateUnitBps);
  EXPECT_NEAR(dec.tx_rate_hint.bits_per_sec(), rec.tx_rate_hint.bits_per_sec(), 1e10 / 65535.0 * 2);
  // Queue rounds *up* to the next KB (never hides a standing queue).
  EXPECT_GE(dec.queue_bytes, rec.queue_bytes);
  EXPECT_LE(dec.queue_bytes, rec.queue_bytes + 1024);
  EXPECT_DOUBLE_EQ(dec.capacity.gbit_per_sec(), 10.0);
  // The cumulative counter is not on the wire.
  EXPECT_EQ(dec.tx_bytes_cum, 0);
}

TEST(IntCodec, SpeedClassesCoverCommonLinkRates) {
  for (const double g : {1.0, 10.0, 25.0, 40.0, 50.0, 100.0, 200.0, 400.0}) {
    const int cls = IntCodec::speed_class(Bandwidth::gbps(g));
    EXPECT_DOUBLE_EQ(IntCodec::class_speed(cls).gbit_per_sec(), g);
  }
  // Off-grid capacities snap to the nearest class.
  EXPECT_DOUBLE_EQ(
      IntCodec::class_speed(IntCodec::speed_class(Bandwidth::gbps(95))).gbit_per_sec(), 100.0);
}

TEST(IntCodec, SaturatesInsteadOfWrapping) {
  sim::IntRecord rec = sample_record();
  rec.phi_total = 1e12;          // 1 Tbps of tokens
  rec.queue_bytes = 100'000'000; // 100 MB queue
  const auto enc = IntCodec::encode(rec);
  const auto dec = IntCodec::decode(enc, rec.link, rec.stamp);
  EXPECT_DOUBLE_EQ(dec.phi_total, 65535.0 * IntCodec::kRateUnitBps);
  EXPECT_EQ(dec.queue_bytes, 4095 * 1024);
}

TEST(IntCodec, QuantizeInlineMatchesWireRoundTripBitForBit) {
  // The probe-egress fast path skips the packed wire struct; its output must
  // still be the exact encode->decode composite, field by field and bit for
  // bit, across ordinary, saturating, and off-grid-capacity records.
  std::vector<sim::IntRecord> cases;
  cases.push_back(sample_record());
  cases.push_back(sim::IntRecord{});
  cases.back().capacity = Bandwidth::gbps(10);
  {
    sim::IntRecord rec = sample_record();
    rec.phi_total = 1e12;
    rec.queue_bytes = 100'000'000;
    cases.push_back(rec);
  }
  {
    sim::IntRecord rec = sample_record();
    rec.capacity = Bandwidth::gbps(95);  // snaps to the 100G class
    rec.tx_rate_hint = Bandwidth::gbps(60);
    rec.queue_bytes = 1;  // rounds up to one queue unit
    cases.push_back(rec);
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    sim::IntRecord wire = cases[i];
    IntCodec::quantize(wire);
    sim::IntRecord inline_rec = cases[i];
    IntCodec::quantize_inline(inline_rec, IntCodec::speed_class(cases[i].capacity));
    EXPECT_EQ(inline_rec.link, wire.link) << "case " << i;
    EXPECT_EQ(inline_rec.stamp.ns(), wire.stamp.ns()) << "case " << i;
    EXPECT_EQ(inline_rec.phi_total, wire.phi_total) << "case " << i;
    EXPECT_EQ(inline_rec.window_total, wire.window_total) << "case " << i;
    EXPECT_EQ(inline_rec.tx_rate_hint.bits_per_sec(), wire.tx_rate_hint.bits_per_sec())
        << "case " << i;
    EXPECT_EQ(inline_rec.queue_bytes, wire.queue_bytes) << "case " << i;
    EXPECT_EQ(inline_rec.capacity.bits_per_sec(), wire.capacity.bits_per_sec()) << "case " << i;
    EXPECT_EQ(inline_rec.tx_bytes_cum, wire.tx_bytes_cum) << "case " << i;
  }
}

TEST(IntCodec, ZeroRecordStaysZero) {
  sim::IntRecord rec{};
  rec.capacity = Bandwidth::gbps(10);
  IntCodec::quantize(rec);
  EXPECT_DOUBLE_EQ(rec.phi_total, 0.0);
  EXPECT_DOUBLE_EQ(rec.window_total, 0.0);
  EXPECT_EQ(rec.queue_bytes, 0);
}

TEST(IntCodec, UfabConvergesOnQuantizedTelemetry) {
  // End to end: two tenants share a trunk with wire-quantized INT; the 2:1
  // proportional split must survive quantization.
  harness::Fabric fab([](sim::Simulator& s) { return topo::make_dumbbell(s, 2, 2); }, 11);
  CoreConfig core;
  core.clean_period = 1_s;
  core.quantize_int = true;
  fab.instrument_cores(core);
  for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
    const HostId host{static_cast<std::int32_t>(h)};
    fab.adopt_stack(host, std::make_unique<edge::EdgeAgent>(
                              fab.net(), fab.vms(), host, edge::EdgeConfig{},
                              transport::TransportOptions{}, fab.rng().fork(h)));
  }
  fab.install_pair_metering(1_ms);
  auto& vms = fab.vms();
  const TenantId a = vms.add_tenant("A", 4_Gbps);
  const TenantId b = vms.add_tenant("B", 2_Gbps);
  const VmPairId pa{vms.add_vm(a, HostId{0}), vms.add_vm(a, HostId{2})};
  const VmPairId pb{vms.add_vm(b, HostId{1}), vms.add_vm(b, HostId{3})};
  fab.keep_backlogged(pa, 0_ms, 40_ms);
  fab.keep_backlogged(pb, 0_ms, 40_ms);
  fab.sim().run_until(40_ms);

  const auto rate = [&](VmPairId p) {
    return fab.pair_meter(p)->trailing_rate(40_ms, 20).gbit_per_sec();
  };
  EXPECT_NEAR(rate(pa) / rate(pb), 2.0, 0.4);
  EXPECT_GT(rate(pa) + rate(pb), 8.0);
  for (const auto* l : fab.net().links()) EXPECT_EQ(l->drops(), 0) << l->name();
}

}  // namespace
}  // namespace ufab::telemetry

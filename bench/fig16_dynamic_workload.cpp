// Figure 16: 90-to-1 highly dynamic workload.
//
// 90 VFs (1 Gbps guarantee each) send to one receiver, flipping between a
// fixed 500 Mbps demand and unlimited demand every 4 ms. Reproduces the rate
// evolution and the RTT distribution; uFAB should bound the RTT within a few
// tens of microseconds while the composites overshoot and queue.
#include <cstdio>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/workload/sources.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;
using workload::OnOffSource;

namespace {

constexpr int kSenders = 90;
constexpr TimeNs kRun = 24_ms;

void run(Scheme scheme) {
  topo::FabricOptions opts;
  opts.host_bw = Bandwidth::gbps(100);
  opts.fabric_bw = Bandwidth::gbps(100);
  opts.prop_delay = 1_us;
  Experiment exp(
      scheme,
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        // 4 leaves x 23 hosts: senders on leaves 1-3, receiver on leaf 4.
        return topo::make_leaf_spine(s, 4, 4, 23, o);
      },
      opts, {}, 13);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  std::vector<std::unique_ptr<OnOffSource>> sources;
  const HostId rx{91};
  for (int i = 0; i < kSenders; ++i) {
    const TenantId t = vms.add_tenant("VF" + std::to_string(i), 1_Gbps);
    const VmPairId pair{vms.add_vm(t, HostId{i % 69}), vms.add_vm(t, rx)};
    OnOffSource::Config cfg;
    cfg.period = 4_ms;
    cfg.limited_rate = 500_Mbps;
    cfg.stop = kRun;
    cfg.start_unlimited = i % 2 == 0;  // half start greedy, half paced
    sources.push_back(std::make_unique<OnOffSource>(fab, pair, cfg));
  }
  fab.sim().run_until(kRun);

  std::printf("\n--- %s ---\n", harness::to_string(scheme));
  // Aggregate goodput at the receiver downlink per 1 ms.
  std::printf("receiver goodput (Gbps) per ms: ");
  const TenantId any{0};
  (void)any;
  double total = 0.0;
  for (int ms = 0; ms < static_cast<int>(kRun.ms()); ++ms) {
    double gbps = 0.0;
    for (int i = 0; i < kSenders; ++i) {
      gbps += exp.tenant_rate_gbps(TenantId{i}, TimeNs{ms * 1'000'000LL},
                                   TimeNs{(ms + 1) * 1'000'000LL});
    }
    total += gbps;
    if (ms % 2 == 0) std::printf(" %5.1f", gbps);
  }
  std::printf("\n");
  const auto rtt = exp.aggregate_rtt_us();
  harness::print_cdf_rows("RTT", rtt, "us");
  std::printf("max queue %lld B, drops %lld\n", static_cast<long long>(exp.max_queue_bytes()),
              static_cast<long long>(exp.total_drops()));
  harness::write_bench_artifacts(fab, "fig16_dynamic_workload", harness::to_string(scheme));
}

}  // namespace

int main() {
  harness::print_header(
      "Figure 16 — 90-to-1 on/off dynamic demand (1G guarantees, 100GE, 4 ms phases)");
  for (const Scheme s :
       {Scheme::kPwc, Scheme::kEsClove, Scheme::kUfabPrime, Scheme::kUfab}) {
    run(s);
  }
  std::printf(
      "\nExpected shape: uFAB keeps goodput near the 95 Gbps target across phase flips\n"
      "with a tightly bounded RTT; PWC overshoots/undershoots (utilization dips),\n"
      "ES+Clove recovers fast but with much higher latency.\n");
  return 0;
}

// Ablations of uFAB's design choices (DESIGN.md §4):
//
//  A. Bloom filter sizing — what false-positive omission actually costs
//     (§3.6 argues the impact is limited; we squeeze the filter until it
//     is not).
//  B. Two-stage admission — the bounded-latency optimization's effect on
//     incast tails (complements Fig. 12 with a queue-size view).
//  C. Probe spacing L_m — the overhead/convergence trade (§4.1).
//  D. INT wire quantization — full-precision vs Appendix-G 64-bit records.
#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/harness/parallel_sweep.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::GuaranteeSpec;
using harness::Scheme;

namespace {

struct IncastResult {
  double dissatisfaction;
  double rtt_p999_us;
  std::int64_t max_queue;
  std::int64_t fp_omissions;
  double probe_overhead_pct;
};

IncastResult run_incast(const std::string& variant, const harness::SchemeOptions& opts,
                        std::uint64_t seed = 71) {
  Experiment exp(
      Scheme::kUfab,
      [](sim::Simulator& s, const topo::FabricOptions& o) { return topo::make_testbed(s, o); },
      {}, opts, seed);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();
  std::vector<GuaranteeSpec> specs;
  for (int i = 0; i < 12; ++i) {
    const TenantId t = vms.add_tenant("VF" + std::to_string(i), 500_Mbps);
    const VmPairId p{vms.add_vm(t, HostId{i % 6}), vms.add_vm(t, HostId{6 + i % 2})};
    fab.keep_backlogged(p, 1_ms, 40_ms);
    specs.push_back(GuaranteeSpec{p, 5e8, 5_ms, 40_ms});
  }
  fab.sim().run_until(40_ms);

  IncastResult r;
  r.dissatisfaction = harness::dissatisfaction_ratio(fab, specs, 40_ms);
  const auto rtt = exp.aggregate_rtt_us();
  r.rtt_p999_us = rtt.empty() ? 0.0 : rtt.percentile(99.9);
  r.max_queue = exp.max_queue_bytes();
  r.fp_omissions = 0;
  for (const auto& agent : fab.core_agents()) r.fp_omissions += agent->false_positive_omissions();
  std::int64_t probe_bytes = 0;
  std::int64_t data_bytes = 0;
  for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
    auto& e = fab.stack_as<edge::EdgeAgent>(HostId{static_cast<std::int32_t>(h)});
    probe_bytes += e.probe_bytes_sent();
    for (const transport::Connection* c : e.connections()) data_bytes += c->bytes_sent_total;
  }
  r.probe_overhead_pct =
      data_bytes > 0 ? 100.0 * static_cast<double>(probe_bytes) / static_cast<double>(data_bytes)
                     : 0.0;
  harness::write_bench_artifacts(fab, "ablation_design_choices", variant);
  return r;
}

}  // namespace

int main() {
  // All four ablations are independent single-seed runs: sweep them across
  // workers (UFAB_JOBS) in one batch, then print each group in order.
  struct Variant {
    std::string label;
    harness::SchemeOptions opts;
  };
  std::vector<Variant> variants;
  const std::size_t bloom_cells[] = {163'840UL, 4096UL, 256UL, 32UL};
  for (const std::size_t cells : bloom_cells) {
    Variant v{"bloom-" + std::to_string(cells), {}};
    v.opts.core.bloom.counters = cells;
    variants.push_back(std::move(v));
  }
  const bool two_stage_modes[] = {true, false};
  for (const bool two_stage : two_stage_modes) {
    Variant v{two_stage ? "two-stage-on" : "two-stage-off", {}};
    v.opts.ufab.two_stage_admission = two_stage;
    variants.push_back(std::move(v));
  }
  const std::int64_t lm_values[] = {1024LL, 4096LL, 16384LL, 65536LL};
  for (const std::int64_t lm : lm_values) {
    Variant v{"lm-" + std::to_string(lm), {}};
    v.opts.ufab.probe_interval_bytes = lm;
    variants.push_back(std::move(v));
  }
  const bool quantize_modes[] = {false, true};
  for (const bool quantize : quantize_modes) {
    Variant v{quantize ? "int-64bit" : "int-full", {}};
    v.opts.core.quantize_int = quantize;
    variants.push_back(std::move(v));
  }

  const std::vector<IncastResult> results = harness::parallel_sweep<IncastResult>(
      static_cast<int>(variants.size()), [&variants](int i) {
        const Variant& v = variants[static_cast<std::size_t>(i)];
        return run_incast(v.label, v.opts);
      });

  std::size_t at = 0;
  harness::print_header("Ablation A — Bloom filter size (12-VF testbed incast)");
  std::printf("%-14s %14s %14s %12s\n", "bloom_cells", "dissatisfied", "fp_omissions",
              "rtt_p999us");
  for (const std::size_t cells : bloom_cells) {
    const IncastResult& r = results[at++];
    std::printf("%-14zu %13.1f%% %14lld %12.1f\n", cells, 100.0 * r.dissatisfaction,
                static_cast<long long>(r.fp_omissions), r.rtt_p999_us);
  }
  std::printf("Small filters omit pairs (Phi undercounts); dissatisfaction grows once\n"
              "omissions dominate — the paper-sized filter shows none of it.\n");

  harness::print_header("Ablation B — two-stage admission (bounded latency)");
  std::printf("%-14s %14s %14s %12s\n", "two_stage", "dissatisfied", "max_queue_B", "rtt_p999us");
  for (const bool two_stage : two_stage_modes) {
    const IncastResult& r = results[at++];
    std::printf("%-14s %13.1f%% %14lld %12.1f\n", two_stage ? "on (uFAB)" : "off (uFAB')",
                100.0 * r.dissatisfaction, static_cast<long long>(r.max_queue), r.rtt_p999_us);
  }

  harness::print_header("Ablation C — probe spacing L_m");
  std::printf("%-14s %14s %14s %12s\n", "L_m_bytes", "dissatisfied", "probe_ovh", "rtt_p999us");
  for (const std::int64_t lm : lm_values) {
    const IncastResult& r = results[at++];
    std::printf("%-14lld %13.1f%% %13.2f%% %12.1f\n", static_cast<long long>(lm),
                100.0 * r.dissatisfaction, r.probe_overhead_pct, r.rtt_p999_us);
  }
  std::printf("Denser probing buys little here; sparser probing cuts overhead further\n"
              "at mildly staler windows — the paper's 4 KB sits at the knee.\n");

  harness::print_header("Ablation D — INT wire quantization (Appendix G)");
  std::printf("%-14s %14s %14s %12s\n", "telemetry", "dissatisfied", "max_queue_B", "rtt_p999us");
  for (const bool quantize : quantize_modes) {
    const IncastResult& r = results[at++];
    std::printf("%-14s %13.1f%% %14lld %12.1f\n", quantize ? "64-bit wire" : "full precision",
                100.0 * r.dissatisfaction, static_cast<long long>(r.max_queue), r.rtt_p999_us);
  }
  std::printf("The 64-bit Appendix-G encoding costs essentially nothing: 8 Mbps token\n"
              "granularity and 1 KB queue granularity are far below the control loop's\n"
              "own noise floor.\n");
  return 0;
}

// Figure 13: Memcached QPS and query completion time under MongoDB
// background traffic (the ECS scenario of §5.3).
//
// Tenant 1 runs latency-sensitive Memcached (24 server VMs on S7-S8,
// 12 client VMs on S1-S4); tenant 2 runs bandwidth-hungry MongoDB
// (24 server VMs on S5-S8, 24 clients on S1-S4, continuous 500 KB fetches).
// "Ideal" is Memcached alone on the fabric.
#include <cstdio>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/harness/parallel_sweep.hpp"
#include "src/workload/apps.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;
using workload::RpcApp;

namespace {

constexpr TimeNs kRun = 200_ms;
constexpr TimeNs kMeasureFrom = 50_ms;

struct Outcome {
  double qps;
  double qct_avg_us;
  double qct_p90_us;
  double qct_p99_us;
};

Outcome run(Scheme scheme, int mongo_clients, bool ideal, std::uint64_t seed) {
  Experiment exp(
      scheme,
      [](sim::Simulator& s, const topo::FabricOptions& o) { return topo::make_testbed(s, o); },
      {}, {}, seed);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  const TenantId mc = vms.add_tenant("memcached", 1_Gbps);
  std::vector<VmId> mc_clients;
  std::vector<VmId> mc_servers;
  for (int i = 0; i < 12; ++i) mc_clients.push_back(vms.add_vm(mc, HostId{i % 4}));
  for (int i = 0; i < 24; ++i) mc_servers.push_back(vms.add_vm(mc, HostId{6 + i % 2}));

  std::unique_ptr<RpcApp> mongo;
  std::vector<VmId> mg_clients;
  std::vector<VmId> mg_servers;
  if (!ideal) {
    const TenantId mg = vms.add_tenant("mongodb", 1_Gbps);
    for (int i = 0; i < mongo_clients; ++i) mg_clients.push_back(vms.add_vm(mg, HostId{i % 4}));
    for (int i = 0; i < 24; ++i) mg_servers.push_back(vms.add_vm(mg, HostId{4 + i % 4}));
    mongo = std::make_unique<RpcApp>(fab, mg_clients, mg_servers,
                                     RpcApp::mongodb(0_ms, kRun, 9), fab.rng().fork("mongo"));
  }
  RpcApp memcached(fab, mc_clients, mc_servers, RpcApp::memcached(0_ms, kRun, 8),
                   fab.rng().fork("mc"));
  fab.sim().run_until(kRun + 20_ms);

  const auto& qct = memcached.qct_us();
  harness::write_bench_artifacts(
      fab, "fig13_memcached",
      std::string(harness::to_string(scheme)) + (ideal ? "-ideal" : "") + "-mongo" +
          std::to_string(mongo_clients));
  return Outcome{memcached.qps(kMeasureFrom, kRun), qct.mean(), qct.percentile(90),
                 qct.percentile(99)};
}

}  // namespace

int main() {
  harness::print_header("Figure 13 — Memcached under MongoDB background (testbed)");
  std::printf("%-22s %-9s %12s %12s %12s %12s\n", "scheme", "load", "QPS", "QCT_avg_us",
              "QCT_p90_us", "QCT_p99_us");
  struct Row {
    const char* label;
    Scheme scheme;
    bool ideal;
  };
  const Row rows[] = {
      {"PicNIC'+WCC+Clove", Scheme::kPwc, false},
      {"ES+Clove", Scheme::kEsClove, false},
      {"uFAB", Scheme::kUfab, false},
      {"Ideal (no MongoDB)", Scheme::kUfab, true},
  };
  struct Variant {
    const Row* row;
    bool high;
  };
  std::vector<Variant> variants;
  for (const bool high : {false, true}) {
    for (const Row& r : rows) variants.push_back({&r, high});
  }
  // Each (scheme, load) cell is an isolated Experiment; the sweep fans them
  // over UFAB_JOBS workers and rows print here in the serial order.
  const auto outcomes = harness::parallel_sweep<Outcome>(
      static_cast<int>(variants.size()), [&variants](int i) {
        const Variant& v = variants[static_cast<std::size_t>(i)];
        return run(v.row->scheme, v.high ? 24 : 8, v.row->ideal, 17);
      });
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    const Outcome& o = outcomes[i];
    std::printf("%-22s %-9s %12.0f %12.1f %12.1f %12.1f\n", v.row->label,
                v.high ? "high" : "low", o.qps, o.qct_avg_us, o.qct_p90_us, o.qct_p99_us);
  }
  std::printf(
      "\nExpected shape: uFAB's QPS and QCT track the Ideal case at both loads;\n"
      "the alternatives lose ~2.5x QPS and >20x tail QCT under high load.\n");
  return 0;
}

// Table 4: uFAB-C resource consumption on a Tofino-class switch, for
// different numbers of supported VM pairs (analytic model; see DESIGN.md).
#include <cstdio>

#include "src/ufab/resource_model.hpp"

int main() {
  std::printf("=== Table 4 — uFAB-C resource model vs supported VM pairs ===\n");
  std::printf("%-22s %10s %10s %10s\n", "resource", "20K", "40K", "80K");
  const auto t20 = ufab::edge::core_resource_table(20'000);
  const auto t40 = ufab::edge::core_resource_table(40'000);
  const auto t80 = ufab::edge::core_resource_table(80'000);
  for (std::size_t i = 0; i < t20.size(); ++i) {
    std::printf("%-22s %9.2f%% %9.2f%% %9.2f%%\n", t20[i].resource.c_str(), t20[i].pct,
                t40[i].pct, t80[i].pct);
  }
  std::printf(
      "\nExpected shape: every resource type stays under ~50%% and only SRAM grows\n"
      "(slightly) with the pair count — the Bloom filter is the only per-pair state,\n"
      "which is what makes uFAB-C scalable on commodity programmable switches.\n");
  return 0;
}

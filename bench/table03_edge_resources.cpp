// Table 3: uFAB-E hardware resource consumption (Alveo-U200-class model).
//
// Synthesis percentages cannot be reproduced without the FPGA; the analytic
// model reproduces the state-size arithmetic (DESIGN.md, substitutions).
#include <cstdio>

#include "src/ufab/resource_model.hpp"

int main() {
  std::printf("=== Table 3 — uFAB-E resource model (8K VM pairs, 1K tenants) ===\n");
  std::printf("%-18s %8s %12s %8s %8s\n", "module", "LUT(%)", "Registers(%)", "BRAM(%)",
              "URAM(%)");
  for (const auto& row : ufab::edge::edge_resource_table(8192, 1024)) {
    std::printf("%-18s %8.1f %12.1f %8.1f %8.1f\n", row.module.c_str(), row.lut_pct,
                row.registers_pct, row.bram_pct, row.uram_pct);
  }
  std::printf("\nScaling (total %% vs supported VM pairs):\n");
  std::printf("%10s %8s %12s %8s %8s\n", "vm_pairs", "LUT(%)", "Registers(%)", "BRAM(%)",
              "URAM(%)");
  for (const int pairs : {1024, 4096, 8192, 16384}) {
    const auto rows = ufab::edge::edge_resource_table(pairs, 1024);
    const auto& total = rows.back();
    std::printf("%10d %8.1f %12.1f %8.1f %8.1f\n", pairs, total.lut_pct, total.registers_pct,
                total.bram_pct, total.uram_pct);
  }
  std::printf(
      "\nExpected shape: ~10%% extra logic and <20%% memory at the paper's operating\n"
      "point; memory grows linearly with pairs, logic only logarithmically.\n");
  return 0;
}

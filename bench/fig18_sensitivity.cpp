// Figure 18: sensitivity of uFAB's stability knobs.
//
// (a,b) Path-migration freeze window: convergence time and migration count
//       under background loads of ~50% and ~70%.
// (c)   Probing frequency: self-clocking vs periodic every 2/3 RTTs.
#include <cstdio>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/harness/parallel_sweep.hpp"
#include "src/workload/sources.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;

namespace {

constexpr TimeNs kRun = 120_ms;

/// One (load, freeze-window) cell: convergence time + migration count.
struct FreezeRow {
  TimeNs settle;
  std::int64_t migrations;
};

FreezeRow freeze_window_run(double load, int n) {
  {
    harness::SchemeOptions opts;
    opts.ufab.freeze_window_max_rtts = n;
    // Start every VF on a random path so convergence happens through
    // violation-driven migrations — the dynamics the freeze window governs.
    opts.ufab.initial_placement_scouting = false;
    Experiment exp(
        Scheme::kUfab,
        [](sim::Simulator& s, const topo::FabricOptions& o) {
          return topo::make_leaf_spine(s, 2, 3, 4, o);
        },
        {}, opts, 19);
    exp.enable_observability(harness::obs_options_from_env());
    auto& fab = exp.fab();
    auto& vms = fab.vms();

    // Background: short flows at the requested load over random pairs.
    const TenantId bg = vms.add_tenant("bg", 1_Gbps);
    std::vector<VmPairId> bg_pairs;
    for (int h = 0; h < 4; ++h) {
      bg_pairs.push_back(
          VmPairId{vms.add_vm(bg, HostId{h}), vms.add_vm(bg, HostId{4 + h})});
    }
    workload::PoissonFlowGenerator::Config gcfg;
    gcfg.target_load = 0.05;  // light background churn; VF count sets load
    gcfg.stop = kRun;
    workload::PoissonFlowGenerator gen(fab, bg_pairs, workload::EmpiricalSizeDist::key_value(),
                                       gcfg, fab.rng().fork("bg"));

    // Foreground: 4G VFs join simultaneously at 20 ms on random paths —
    // they must spread across the three spine paths by migration. Load
    // scales the VF count (4 VFs ~ 50%, 6 VFs ~ 70% of the fabric).
    const int n_vfs = load > 0.6 ? 5 : 4;  // 16G ~ 53%, 20G ~ 67% of 3x10G
    std::vector<VmPairId> fg;
    std::vector<harness::GuaranteeSpec> specs;
    for (int i = 0; i < n_vfs; ++i) {
      const TenantId t = vms.add_tenant("VF" + std::to_string(i), 4_Gbps);
      fg.push_back(VmPairId{vms.add_vm(t, HostId{i % 4}), vms.add_vm(t, HostId{4 + i % 4})});
      fab.keep_backlogged(fg.back(), 20_ms, kRun);
      specs.push_back(harness::GuaranteeSpec{fg.back(), 4e9, 20_ms, kRun});
    }
    fab.sim().run_until(kRun);

    // Convergence: first time the per-ms dissatisfaction stays < 5%.
    const auto series = harness::dissatisfaction_series(fab, specs, kRun);
    FreezeRow row;
    row.settle = series.settle_time(20_ms, 0.0, 5.0, 10_ms);
    row.migrations = 0;
    for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
      row.migrations +=
          fab.stack_as<edge::EdgeAgent>(HostId{static_cast<std::int32_t>(h)}).migrations();
    }
    harness::write_bench_artifacts(fab, "fig18_sensitivity",
                                   "load" + std::to_string(static_cast<int>(load * 100)) +
                                       "-freeze" + std::to_string(n));
    return row;
  }
}

/// (a,b): VFs join a leaf-spine fabric under background load; measure the
/// time until every VF holds its guarantee and the number of migrations.
void freeze_window_sweep(double load) {
  std::printf("\n--- freeze window sweep, background load %.0f%% ---\n", load * 100.0);
  std::printf("%-14s %18s %12s\n", "waiting_time", "convergence_ms", "migrations");
  const std::vector<int> windows = {2, 3, 4, 10};
  // Each window is an isolated fabric; fan over UFAB_JOBS, print in order.
  const auto rows = harness::parallel_sweep<FreezeRow>(
      static_cast<int>(windows.size()), [load, &windows](int i) {
        return freeze_window_run(load, windows[static_cast<std::size_t>(i)]);
      });
  for (std::size_t i = 0; i < windows.size(); ++i) {
    char conv[32];
    if (rows[i].settle == TimeNs::max()) {
      std::snprintf(conv, sizeof(conv), "no convergence");
    } else {
      std::snprintf(conv, sizeof(conv), "%.2f", (rows[i].settle - 20_ms).ms());
    }
    std::printf("[1,%2d] RTTs    %18s %12lld\n", windows[i], conv,
                static_cast<long long>(rows[i].migrations));
  }
}

/// (c): probing frequency vs convergence of a 16-to-1 incast over background.
void probing_frequency() {
  std::printf("\n--- probing frequency (16-to-1 incast over ~50%% load) ---\n");
  std::printf("%-16s %16s %14s %12s\n", "probing", "settle_ms", "rtt_p99_us", "probes");
  struct Mode {
    const char* label;
    edge::ProbeMode mode;
    double rtts;
  };
  const Mode modes[] = {
      {"self-clocking", edge::ProbeMode::kAdaptive, 0.0},
      {"every 2 RTT", edge::ProbeMode::kPeriodic, 2.0},
      {"every 3 RTT", edge::ProbeMode::kPeriodic, 3.0},
  };
  struct ProbeRow {
    TimeNs worst;
    double rtt_p99;
    std::int64_t probes;
  };
  const auto run_mode = [&modes](int idx) {
    const Mode& m = modes[idx];
    harness::SchemeOptions opts;
    opts.ufab.probe_mode = m.mode;
    opts.ufab.periodic_rtts = m.rtts;
    Experiment exp(
        Scheme::kUfab,
        [](sim::Simulator& s, const topo::FabricOptions& o) {
          return topo::make_dumbbell(s, 16, 1, o);
        },
        {}, opts, 29);
    exp.enable_observability(harness::obs_options_from_env());
    auto& fab = exp.fab();
    auto& vms = fab.vms();
    std::vector<VmPairId> pairs;
    for (int i = 0; i < 16; ++i) {
      const TenantId t = vms.add_tenant("VF" + std::to_string(i), 500_Mbps);
      pairs.push_back(VmPairId{vms.add_vm(t, HostId{i}), vms.add_vm(t, HostId{16})});
      fab.keep_backlogged(pairs.back(), 5_ms, 60_ms);
    }
    fab.sim().run_until(60_ms);

    // Settle: every VF within +-35% of the 9.5/16 fair share for 5 ms.
    TimeNs worst = TimeNs::zero();
    for (const auto& p : pairs) {
      const TimeNs s =
          harness::rate_settle_time(fab, p, 5_ms, 60_ms, 9.5 / 16 * 0.65, 9.5 / 16 * 1.35, 5_ms);
      worst = std::max(worst, s == TimeNs::max() ? 60_ms : s - 5_ms);
    }
    ProbeRow row;
    row.worst = worst;
    row.probes = 0;
    for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
      row.probes +=
          fab.stack_as<edge::EdgeAgent>(HostId{static_cast<std::int32_t>(h)}).probes_sent();
    }
    const auto rtt = exp.aggregate_rtt_us();
    row.rtt_p99 = rtt.empty() ? 0.0 : rtt.percentile(99);
    harness::write_bench_artifacts(fab, "fig18_sensitivity", m.label);
    return row;
  };
  const auto rows = harness::parallel_sweep<ProbeRow>(3, run_mode);
  for (int i = 0; i < 3; ++i) {
    std::printf("%-16s %16.2f %14.1f %12lld\n", modes[i].label, rows[static_cast<std::size_t>(i)].worst.ms(),
                rows[static_cast<std::size_t>(i)].rtt_p99,
                static_cast<long long>(rows[static_cast<std::size_t>(i)].probes));
  }
}

}  // namespace

int main() {
  harness::print_header("Figure 18 — convergence and stability sensitivity");
  freeze_window_sweep(0.5);
  freeze_window_sweep(0.7);
  probing_frequency();
  std::printf(
      "\nExpected shape: at 50%% load every freeze window converges fast; at 70%% a\n"
      "longer window ([1,10]) cuts migrations substantially at similar convergence.\n"
      "Lazier probing converges in about the same time (staler info -> more\n"
      "aggressive per-loop reaction) with proportionally fewer probes.\n");
  return 0;
}

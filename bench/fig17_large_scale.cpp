// Figure 17: performance under a realistic workload at scale.
//
// FatTree with 1:1 and 1:2 oversubscription, Poisson flow arrivals with a
// heavy-tailed (websearch) size distribution at average loads of 0.5 / 0.7.
// Reproduces: (a) bandwidth dissatisfaction, (b) tail RTT, (c) FCT slowdown
// avg/stddev, (d) FCT slowdown breakdown by flow size.
//
// Scale note: the paper simulates 512 hosts at 100G in NS3; this bench
// defaults to a k=8 FatTree (128 hosts) at 10G — the contention structure
// (multi-path fabric, oversubscription, heavy-tailed flows) is preserved.
// The sharded engine (UFAB_SHARDS, see DESIGN.md §9) makes that tractable;
// set UFAB_FIG17_K=4 for a quick 16-host run or UFAB_FIG17_K=16 for 1024
// hosts.  UFAB_FIG17_ONLY=<scheme>,<oversub>,<load> restricts the sweep to
// one grid cell (the A/B timing harness in scripts/run_perf.sh uses this).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/harness/parallel_sweep.hpp"
#include "src/workload/sources.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;

namespace {

constexpr TimeNs kRun = 80_ms;

struct Outcome {
  double dissatisfaction_pct;
  double rtt_p99_us;
  double slow_avg;
  double slow_std;
  double slow_p99;
  PercentileTracker by_size[4];
};

int fat_tree_k() {
  if (const char* k = std::getenv("UFAB_FIG17_K")) return std::atoi(k);
  return 8;
}

Outcome run(Scheme scheme, int oversub, double load, std::uint64_t seed) {
  const int k = fat_tree_k();
  harness::SchemeOptions sopts;
  // Bursty short-flow workload: deregister idle pairs quickly so transient
  // pairs do not keep reserving subscription on their old links.
  sopts.ufab.idle_finish_timeout = TimeNs{300'000};
  // Tiered propagation: short in-pod fibers, long agg<->core spans — the
  // realistic DC split, chosen so the max base RTT stays exactly at the
  // paper's 24 us (0.5*4 + 5*2 = 12 us one-way).  The long core tier is also
  // what the sharded engine feeds on: partition cuts land on agg<->core, so
  // the epoch lookahead is 5 us instead of the uniform 2 us (DESIGN.md §12).
  topo::FabricOptions base_opts;
  base_opts.prop_delay = TimeNs{500};
  base_opts.core_prop = TimeNs{5'000};
  Experiment exp(
      scheme,
      [k, oversub](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_fat_tree(s, k, oversub, o);
      },
      base_opts, sopts, seed);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  // Four tenants, one VM per host each. Guarantees are scaled by the
  // oversubscription factor so the hose guarantees remain theoretically
  // satisfiable (the paper Silo-checks its workloads the same way): per-host
  // subscription is 8G at 1:1 and 4G at 1:2 (cross-pod capacity halves).
  const double guars[4] = {1.0 / oversub, 2.0 / oversub, 2.0 / oversub, 3.0 / oversub};
  std::vector<VmPairId> pairs;
  Rng pair_rng = fab.rng().fork("pairs");
  const int hosts = static_cast<int>(fab.net().host_count());
  for (int t = 0; t < 4; ++t) {
    const TenantId tid = vms.add_tenant("T" + std::to_string(t), Bandwidth::gbps(guars[t]));
    std::vector<VmId> tvms;
    for (int h = 0; h < hosts; ++h) tvms.push_back(vms.add_vm(tid, HostId{h}));
    // Each VM talks to a handful of random peers (production-like fan-out).
    for (int h = 0; h < hosts; ++h) {
      for (int p = 0; p < 3; ++p) {
        int peer = static_cast<int>(pair_rng.below(static_cast<std::uint64_t>(hosts)));
        if (peer == h) peer = (peer + 1) % hosts;
        pairs.push_back(VmPairId{tvms[static_cast<std::size_t>(h)],
                                 tvms[static_cast<std::size_t>(peer)]});
      }
    }
  }

  workload::PoissonFlowGenerator::Config gcfg;
  gcfg.target_load = load;
  gcfg.stop = kRun;
  workload::PoissonFlowGenerator gen(fab, pairs, workload::EmpiricalSizeDist::websearch(), gcfg,
                                     fab.rng().fork("flows"));
  fab.sim().run_until(kRun + 40_ms);  // drain

  Outcome o;
  o.dissatisfaction_pct = gen.recorder().violation_volume_pct();
  const auto rtt = exp.aggregate_rtt_us();
  o.rtt_p99_us = rtt.empty() ? 0.0 : rtt.percentile(99);
  const auto& slow = gen.recorder().slowdown();
  o.slow_avg = slow.mean();
  o.slow_std = slow.stddev();
  o.slow_p99 = slow.empty() ? 0.0 : slow.percentile(99);
  const std::int64_t bins[5] = {0, 30'000, 300'000, 3'000'000, 1LL << 60};
  for (int b = 0; b < 4; ++b) {
    o.by_size[b] = gen.recorder().slowdown_for_sizes(bins[b], bins[b + 1]);
  }
  harness::write_bench_artifacts(fab, "fig17_large_scale",
                                 std::string(harness::to_string(scheme)) + "-oversub" +
                                     std::to_string(oversub) + "-load" +
                                     std::to_string(static_cast<int>(load * 100)));
  return o;
}

}  // namespace

int main() {
  harness::print_header("Figure 17 — realistic workload on a FatTree (websearch flow sizes)");
  std::printf("%-20s %7s %5s %14s %10s %18s %9s\n", "scheme", "oversub", "load",
              "dissatisfied_%", "RTT_p99us", "slowdown(avg+-std)", "slow_p99");
  // Variants in the serial print order; the sweep may run them on worker
  // threads (UFAB_JOBS), but each owns its Simulator/Rng/metrics so outcomes
  // match a serial run bit for bit, and printing happens here, in order.
  struct Variant {
    int oversub;
    double load;
    Scheme scheme;
  };
  std::vector<Variant> variants;
  for (const int oversub : {2, 1}) {
    for (const double load : {0.5, 0.7}) {
      for (const Scheme s : {Scheme::kPwc, Scheme::kEsClove, Scheme::kUfab}) {
        variants.push_back({oversub, load, s});
      }
    }
  }
  if (const char* only = std::getenv("UFAB_FIG17_ONLY"); only != nullptr && only[0] != '\0') {
    char scheme_name[32] = {0};
    int oversub = 0;
    double load = 0.0;
    if (std::sscanf(only, "%31[^,],%d,%lf", scheme_name, &oversub, &load) != 3) {
      std::fprintf(stderr, "bad UFAB_FIG17_ONLY (want <scheme>,<oversub>,<load>): %s\n", only);
      return 1;
    }
    std::vector<Variant> keep;
    for (const Variant& v : variants) {
      if (std::string(harness::to_string(v.scheme)) == scheme_name && v.oversub == oversub &&
          static_cast<int>(v.load * 100 + 0.5) == static_cast<int>(load * 100 + 0.5)) {
        keep.push_back(v);
      }
    }
    if (keep.empty()) {
      std::fprintf(stderr, "UFAB_FIG17_ONLY matches no grid cell: %s\n", only);
      return 1;
    }
    variants = keep;
  }
  const std::vector<Outcome> outcomes = harness::parallel_sweep<Outcome>(
      static_cast<int>(variants.size()), [&variants](int i) {
        const Variant& v = variants[static_cast<std::size_t>(i)];
        return run(v.scheme, v.oversub, v.load, 41);
      });
  std::vector<std::pair<Scheme, Outcome>> breakdown;  // saved from the (1:1, 0.7) cells
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    Outcome o = outcomes[i];
    std::printf("%-20s %7s %5.1f %14.1f %10.1f %10.1f+-%5.1f %9.1f\n",
                harness::to_string(v.scheme), v.oversub == 1 ? "1:1" : "1:2", v.load,
                o.dissatisfaction_pct, o.rtt_p99_us, o.slow_avg, o.slow_std, o.slow_p99);
    if (v.oversub == 1 && v.load == 0.7) breakdown.emplace_back(v.scheme, std::move(o));
  }
  // (d) FCT breakdown by flow size, 1:1 oversubscription at load 0.7 (absent
  // when a UFAB_FIG17_ONLY filter excludes those cells).
  if (!breakdown.empty()) {
    std::printf("\nFCT slowdown by flow size (1:1, load 0.7):\n");
    std::printf("%-20s %16s %16s %16s %16s\n", "scheme", "<30KB", "30-300KB", "0.3-3MB", ">3MB");
    for (const auto& [scheme, o] : breakdown) {
      std::printf("%-20s", harness::to_string(scheme));
      for (int b = 0; b < 4; ++b) {
        if (o.by_size[b].empty()) {
          std::printf(" %16s", "-");
        } else {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.1f/%.1f", o.by_size[b].mean(),
                        o.by_size[b].percentile(99));
          std::printf(" %16s", buf);
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected shape: uFAB has the lowest dissatisfaction and tail RTT at every\n"
      "(oversubscription, load) point, and the flattest slowdown across sizes;\n"
      "ES+Clove beats PWC on dissatisfaction but pays in tail RTT. Cells are\n"
      "avg/p99 slowdown.\n");
  return 0;
}

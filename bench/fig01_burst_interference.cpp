// Figures 1-2 (motivation): bursty traffic interference at short timescales.
//
// The production observation: hourly-average utilization is low (<10%, Fig 1a
// / ~27% Fig 2a), yet a victim tenant sees periodic 10-50x tail latency
// inflation because another tenant bursts at millisecond granularity. The
// paper's traces are proprietary; this bench reproduces the *phenomenon* with
// a synthetic interferer: a latency-sensitive tenant probes the fabric with
// small RPCs while a bursty tenant flips between idle and line-rate every few
// milliseconds, keeping its long-term average low.
#include <cstdio>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/workload/apps.hpp"
#include "src/workload/sources.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;

namespace {

constexpr TimeNs kRun = 150_ms;

void run(Scheme scheme) {
  Experiment exp(
      scheme,
      [](sim::Simulator& s, const topo::FabricOptions& o) { return topo::make_testbed(s, o); },
      {}, {}, 77);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  // Victim: small RPCs across the pods (Fig 1's tenant measuring RTT).
  const TenantId victim = vms.add_tenant("victim", 1_Gbps);
  std::vector<VmId> v_clients{vms.add_vm(victim, HostId{0}), vms.add_vm(victim, HostId{1})};
  std::vector<VmId> v_servers{vms.add_vm(victim, HostId{4}), vms.add_vm(victim, HostId{5})};
  workload::RpcApp::Config rpc = workload::RpcApp::memcached(0_ms, kRun, 1);
  rpc.fixed_response_bytes = 2'000;
  workload::RpcApp app(fab, v_clients, v_servers, rpc, fab.rng().fork("victim"));

  // Interferer: "routine data analytics" — 3 ms line-rate bursts every 12 ms
  // (~25% duty => low average load), same pods.
  const TenantId noisy = vms.add_tenant("analytics", 1_Gbps);
  std::vector<std::unique_ptr<workload::OnOffSource>> bursts;
  for (int i = 0; i < 4; ++i) {
    const VmPairId p{vms.add_vm(noisy, HostId{i}), vms.add_vm(noisy, HostId{4 + i})};
    workload::OnOffSource::Config cfg;
    cfg.period = 3_ms;                       // burst length
    cfg.limited_rate = Bandwidth::mbps(50);  // near-idle between bursts
    cfg.stop = kRun;
    cfg.start_unlimited = i % 2 == 0;
    bursts.push_back(std::make_unique<workload::OnOffSource>(fab, p, cfg));
  }
  fab.sim().run_until(kRun + 10_ms);

  // Long-term average utilization of the busiest core link.
  double max_util = 0.0;
  for (const auto* l : fab.net().links()) {
    if (l->name().find("Core") == std::string::npos) continue;
    const double gbps = static_cast<double>(l->tx_bytes_cum()) * 8.0 / kRun.sec() / 1e9;
    max_util = std::max(max_util, gbps / l->capacity().gbit_per_sec());
  }
  const auto& qct = app.qct_us();
  std::printf("%-22s avg core util=%4.0f%%  victim QCT p50=%7.1fus  p99.9=%9.1fus  (x%.0f)\n",
              harness::to_string(scheme), 100.0 * max_util, qct.percentile(50),
              qct.percentile(99.9), qct.percentile(99.9) / qct.percentile(50));
  harness::write_bench_artifacts(fab, "fig01_burst_interference", harness::to_string(scheme));
}

}  // namespace

int main() {
  harness::print_header(
      "Figures 1-2 (motivation) — millisecond bursts under low average utilization");
  run(Scheme::kPwc);
  run(Scheme::kEsClove);
  run(Scheme::kUfab);
  std::printf(
      "\nExpected shape: despite low long-term utilization, millisecond-granularity\n"
      "bursts inflate the victim's tail latency by 10-50x under best-effort/composite\n"
      "schemes (the Fig 1b phenomenon); uFAB keeps the tail within a small multiple\n"
      "of the median.\n");
  return 0;
}

// Figure 11: bandwidth guarantee with work conservation under high load.
//
// Permutation traffic across the testbed pods with three guarantee classes
// (1/2/5 Gbps per host); a new VF is inserted every 20 ms. Reproduces:
//   (a-c) per-VF rate evolution for uFAB / PWC / ES+Clove,
//   (d)   bandwidth-dissatisfaction ratio over time,
//   (e)   queue length distribution.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/harness/experiment.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::GuaranteeSpec;
using harness::Scheme;

namespace {

constexpr TimeNs kRunTime = 400_ms;

struct VfSpec {
  std::string name;
  VmPairId pair;
  double guarantee_bps;
  TimeNs join;
};

void run_scheme(Scheme scheme) {
  Experiment exp(
      scheme,
      [](sim::Simulator& s, const topo::FabricOptions& o) { return topo::make_testbed(s, o); },
      {}, {}, 31);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  // 4 source hosts (pod 1) x 3 classes = 12 VFs; destinations in pod 2.
  const double classes_gbps[3] = {1.0, 2.0, 5.0};
  std::vector<VfSpec> vfs;
  Rng join_rng = fab.rng().fork("joins");
  for (int h = 0; h < 4; ++h) {
    for (int c = 0; c < 3; ++c) {
      const auto g = Bandwidth::gbps(classes_gbps[c]);
      const TenantId t =
          vms.add_tenant("H" + std::to_string(h) + "-" + std::to_string(c) + "G", g);
      const VmPairId pair{vms.add_vm(t, HostId{h}), vms.add_vm(t, HostId{4 + h})};
      vfs.push_back(VfSpec{std::to_string(static_cast<int>(classes_gbps[c])) + "G/H" +
                               std::to_string(h + 1),
                           pair, g.bits_per_sec(), TimeNs::zero()});
    }
  }
  // Random insertion order, one VF every 20 ms.
  for (std::size_t i = 0; i + 1 < vfs.size(); ++i) {
    const auto j = i + static_cast<std::size_t>(join_rng.below(vfs.size() - i));
    std::swap(vfs[i], vfs[j]);
  }
  for (std::size_t i = 0; i < vfs.size(); ++i) {
    vfs[i].join = TimeNs{static_cast<std::int64_t>(i) * 20'000'000};
    fab.keep_backlogged(vfs[i].pair, vfs[i].join, kRunTime);
  }

  PercentileTracker queues;
  fab.sample_queues(100_us, kRunTime, queues);
  fab.sim().run_until(kRunTime);

  // (a/b/c) rate evolution, 20 ms steps.
  harness::print_header(std::string("Fig 11 rate evolution — ") + to_string(scheme));
  std::vector<std::pair<std::string, VmPairId>> named;
  for (const auto& v : vfs) named.emplace_back(v.name, v.pair);
  harness::print_rate_series(fab, named, 0_ms, kRunTime, 20_ms);

  // (d) dissatisfaction.
  std::vector<GuaranteeSpec> specs;
  for (const auto& v : vfs) {
    specs.push_back(GuaranteeSpec{v.pair, v.guarantee_bps, v.join + 5_ms, kRunTime});
  }
  std::printf("dissatisfaction ratio (whole run): %.2f%%\n",
              100.0 * harness::dissatisfaction_ratio(fab, specs, kRunTime));
  const auto series = harness::dissatisfaction_series(fab, specs, kRunTime);
  std::printf("dissatisfaction%% by 50ms window:");
  for (TimeNs t = 0_ms; t < kRunTime; t += 50_ms) {
    std::printf(" %5.1f", series.mean_in(t, t + 50_ms));
  }
  std::printf("\n");

  // Register consistency: total registered tokens across all egresses should
  // be (sum of pair tokens) x (switch hops per path) = 32G x 5 = 160G.
  double total_phi = 0.0;
  for (const auto& agent : fab.core_agents()) total_phi += agent->phi_total();
  if (!fab.core_agents().empty()) {
    std::printf("total registered phi across fabric: %.1fG (expected ~160G)\n", total_phi / 1e9);
  }
  if (const char* dbg = std::getenv("UFAB_DEBUG_LINKS"); dbg != nullptr && *dbg == '1') {
    // Debug: per-egress subscription vs achieved rate (switch egresses only).
    std::size_t agent_idx = 0;
    for (sim::Switch* sw : fab.net().switches()) {
      for (std::int32_t p = 0; p < sw->port_count(); ++p, ++agent_idx) {
        const auto& agent = fab.core_agents()[agent_idx];
        if (agent->phi_total() < 1e8) continue;
        std::printf("  %-18s phi=%6.2fG pairs=%zu tx=%6.2fG q=%lld\n",
                    sw->port(p).name().c_str(), agent->phi_total() / 1e9,
                    agent->active_pairs(), sw->port(p).tx_rate(TimeNs{1'000'000}).gbit_per_sec(),
                    static_cast<long long>(sw->port(p).queue_bytes()));
      }
    }
  }

  // (e) queue distribution.
  harness::print_cdf_rows("queue length (bytes)", queues, "B");
  std::printf("max queue %lld B, drops %lld\n", static_cast<long long>(exp.max_queue_bytes()),
              static_cast<long long>(exp.total_drops()));
  harness::write_bench_artifacts(fab, "fig11_bandwidth_guarantee", to_string(scheme));
}

}  // namespace

int main() {
  harness::print_header(
      "Figure 11 — guarantees + work conservation, 12 VFs (1/2/5G classes) joining every 20 ms");
  for (const Scheme s : {Scheme::kUfab, Scheme::kPwc, Scheme::kEsClove}) run_scheme(s);
  std::printf(
      "\nExpected shape: uFAB converges within ~1 ms of each join with dissatisfaction ~0\n"
      "and near-empty queues; PWC misses guarantees (tens of %%); ES+Clove protects\n"
      "guarantees better but builds queues (large queue tail).\n");
  return 0;
}

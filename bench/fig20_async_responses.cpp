// Figure 20 (Appendix D): convergence with heterogeneous response delays.
//
// Many senders incast one receiver over 50% background load; their probe
// responses arrive asynchronously (spread over more than one RTT), yet each
// sender's rate still converges quickly.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/workload/sources.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;

int main() {
  harness::print_header("Figure 20 — convergence with asynchronous probe responses");
  constexpr int kSenders = 64;
  harness::SchemeOptions opts;
  opts.ufab.record_response_times = true;
  topo::FabricOptions fopts;
  fopts.host_bw = Bandwidth::gbps(25);
  fopts.fabric_bw = Bandwidth::gbps(100);
  Experiment exp(
      Scheme::kUfab,
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_leaf_spine(s, 4, 4, 17, o);
      },
      fopts, opts, 59);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  const HostId rx{67};
  std::vector<VmPairId> pairs;
  for (int i = 0; i < kSenders; ++i) {
    const TenantId t = vms.add_tenant("VF" + std::to_string(i), 1_Gbps);
    pairs.push_back(VmPairId{vms.add_vm(t, HostId{i % 48}), vms.add_vm(t, rx)});
    fab.keep_backlogged(pairs.back(), 2_ms, 30_ms);
  }
  fab.sim().run_until(30_ms);

  // Response-round asynchrony: for round k, the spread of the k-th response
  // arrival across senders, normalized by the base RTT.
  const TimeNs rtt0 = fab.net().base_rtt(HostId{0}, rx);
  PercentileTracker spread_rtts;
  for (std::size_t round = 1; round < 12; ++round) {
    PercentileTracker at;
    for (const auto& p : pairs) {
      auto* c = fab.stack_as<edge::EdgeAgent>(vms.host_of(p.src)).ufab_connection(p);
      if (c != nullptr && c->response_times.size() > round) {
        at.add(c->response_times[round].us());
      }
    }
    if (at.count() < pairs.size() / 2) continue;
    // Robust spread of the k-th response arrival across senders (p90-p10),
    // in units of the base RTT.
    spread_rtts.add((at.percentile(90) - at.percentile(10)) / rtt0.us());
  }
  harness::print_cdf_rows("response spread (RTTs)", spread_rtts, "x");

  // Rate convergence of one sender despite the asynchrony.
  std::printf("sender 0 rate (Gbps) per ms:");
  for (int ms = 0; ms < 30; ms += 2) {
    std::printf(" %5.2f", exp.pair_rate_gbps(pairs[0], TimeNs{ms * 1'000'000LL},
                                             TimeNs{(ms + 2) * 1'000'000LL}));
  }
  std::printf("\n");
  // The receiver downlink is 25G; fair share = 0.95 * 25 / senders.
  const double fair = 0.95 * 25.0 / kSenders;
  const TimeNs settle =
      harness::rate_settle_time(fab, pairs[0], 2_ms, 30_ms, fair * 0.6, fair * 1.4, 5_ms);
  if (settle == TimeNs::max()) {
    std::printf("sender 0: did not settle\n");
  } else {
    std::printf("sender 0 settled %.2f ms after start\n", (settle - 2_ms).ms());
  }
  harness::write_bench_artifacts(fab, "fig20_async_responses");
  std::printf(
      "\nExpected shape: responses of one probing round spread over >1 RTT across\n"
      "senders, yet every sender converges to the fair share within a few ms.\n");
  return 0;
}

// Figure 4 (Case-1): RTT distribution under growing incast degree.
//
// N flows of different VFs (500 Mbps guarantee each) converge on one host.
// The paper's point: PicNIC'+WCC+Clove's tail latency grows with the incast
// degree because greedy rate evolution lets the aggregate burst scale with
// the number of flows, while uFAB's two-stage admission bounds it.
#include <cstdio>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/harness/parallel_sweep.hpp"
#include "src/workload/sources.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;

namespace {

PercentileTracker run_incast(Scheme scheme, int degree, std::uint64_t seed) {
  Experiment exp(
      scheme,
      [](sim::Simulator& s, const topo::FabricOptions& o) { return topo::make_testbed(s, o); },
      {}, {}, seed);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  // N senders spread over S1..S7, all targeting VMs on S8 (HostId 7).
  std::vector<VmPairId> pairs;
  for (int i = 0; i < degree; ++i) {
    const TenantId t = vms.add_tenant("VF" + std::to_string(i), 500_Mbps);
    const VmId src = vms.add_vm(t, HostId{i % 7});
    const VmId dst = vms.add_vm(t, HostId{7});
    pairs.push_back(VmPairId{src, dst});
  }
  // All flows start at the same instant — the synchronized worst case.
  for (const auto& p : pairs) fab.keep_backlogged(p, 1_ms, 30_ms);
  fab.sim().run_until(30_ms);
  harness::write_bench_artifacts(fab, "fig04_incast_latency",
                                 std::string(harness::to_string(scheme)) + "-deg" +
                                     std::to_string(degree));
  return exp.aggregate_rtt_us();
}

}  // namespace

int main() {
  harness::print_header("Figure 4 — RTT vs incast degree (testbed, 10G, 500 Mbps guarantees)");
  std::printf("%-20s %8s %10s %10s %10s %10s\n", "scheme", "incast", "p50_us", "p99_us",
              "p99.9_us", "max_us");
  struct Variant {
    Scheme scheme;
    int degree;
  };
  std::vector<Variant> variants;
  for (const Scheme scheme : {Scheme::kPwc, Scheme::kUfab}) {
    for (const int degree : {2, 6, 10, 14}) variants.push_back({scheme, degree});
  }
  // Each variant is an isolated Experiment (own Simulator/Rng), so the sweep
  // may fan them over UFAB_JOBS workers; printing stays serial, in order.
  const auto rtts = harness::parallel_sweep<PercentileTracker>(
      static_cast<int>(variants.size()), [&variants](int i) {
        const Variant& v = variants[static_cast<std::size_t>(i)];
        return run_incast(v.scheme, v.degree, 1000 + static_cast<std::uint64_t>(v.degree));
      });
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& rtt = rtts[i];
    std::printf("%-20s %8d %10.1f %10.1f %10.1f %10.1f\n", harness::to_string(variants[i].scheme),
                variants[i].degree, rtt.percentile(50), rtt.percentile(99), rtt.percentile(99.9),
                rtt.max());
  }
  std::printf(
      "\nExpected shape: PWC tails grow with the incast degree; uFAB stays bounded\n"
      "near the latency bound (~4x baseRTT ~ 100 us) at every degree.\n");
  return 0;
}

// Figure 12: 14-to-1 incast — rate evolution and network RTT, including
// uFAB' (no two-stage bounded-latency admission).
#include <cstdio>
#include <vector>

#include "src/harness/experiment.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;

namespace {

constexpr int kDegree = 14;
constexpr TimeNs kRun = 60_ms;

void run_scheme(Scheme scheme) {
  Experiment exp(
      scheme,
      [](sim::Simulator& s, const topo::FabricOptions& o) { return topo::make_testbed(s, o); },
      {}, {}, 5);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();
  std::vector<VmPairId> pairs;
  for (int i = 0; i < kDegree; ++i) {
    const TenantId t = vms.add_tenant("VF" + std::to_string(i), 500_Mbps);
    pairs.push_back(VmPairId{vms.add_vm(t, HostId{i % 7}), vms.add_vm(t, HostId{7})});
  }
  for (const auto& p : pairs) fab.keep_backlogged(p, 1_ms, kRun);
  fab.sim().run_until(kRun);

  // (a) mean per-VF rate over time — all 14 should converge to ~0.68 Gbps.
  std::printf("\n--- %s ---\n", to_string(scheme));
  std::printf("per-VF mean rate (Gbps) by 10 ms window: ");
  for (TimeNs t = 0_ms; t < kRun; t += 10_ms) {
    double sum = 0.0;
    for (const auto& p : pairs) sum += exp.pair_rate_gbps(p, t, t + 10_ms);
    std::printf(" %5.2f", sum / kDegree);
  }
  std::printf("\n");
  double spread_lo = 1e9;
  double spread_hi = 0.0;
  for (const auto& p : pairs) {
    const double r = exp.pair_rate_gbps(p, 30_ms, kRun);
    spread_lo = std::min(spread_lo, r);
    spread_hi = std::max(spread_hi, r);
  }
  std::printf("steady per-VF rate spread: [%.2f, %.2f] Gbps (fair = %.2f)\n", spread_lo,
              spread_hi, 9.5 / kDegree);

  // (b) network RTT distribution.
  const auto rtt = exp.aggregate_rtt_us();
  harness::print_cdf_rows("RTT", rtt, "us");
  std::printf("max queue %lld B, drops %lld\n", static_cast<long long>(exp.max_queue_bytes()),
              static_cast<long long>(exp.total_drops()));
  harness::write_bench_artifacts(fab, "fig12_incast_bounded_latency", to_string(scheme));
}

}  // namespace

int main() {
  harness::print_header("Figure 12 — 14-to-1 incast (500 Mbps guarantees, testbed)");
  for (const Scheme s :
       {Scheme::kPwc, Scheme::kEsClove, Scheme::kUfabPrime, Scheme::kUfab}) {
    run_scheme(s);
  }
  std::printf(
      "\nExpected shape: PWC and ES+Clove converge slowly with ~ms tails; uFAB' reacts\n"
      "fast but keeps a fat RTT tail (unbounded initial burst); uFAB bounds the tail\n"
      "near its latency bound (~4x baseRTT).\n");
  return 0;
}

// Always-on soak harness: a long horizon of simulated production under
// rotating fault/burst/hotspot episodes, SLO-guarded and memory-bounded.
//
// Defaults run one simulated hour; UFAB_SOAK_SMOKE=1 shrinks it to the CI
// smoke shape (~seconds).  Configuration comes from the environment:
//
//   UFAB_SOAK_SEED        episode/workload seed (default 1)
//   UFAB_SOAK_SMOKE=1     smoke horizon for CI
//   UFAB_SOAK_DURATION_S  simulated traffic seconds
//   UFAB_SOAK_WINDOW_MS   SLO window width
//   UFAB_SOAK_CSV         per-window SLO row output path
//   UFAB_SHARDS           engine shard count (fault plane pins epochs to
//                         sequential execution; see sim.forced_sequential)
//
// Exit status is nonzero on any invariant violation or SLO breach, so a CI
// lane can gate on it directly.
#include <cstdio>
#include <filesystem>

#include "src/harness/experiment.hpp"
#include "src/soak/runner.hpp"

using namespace ufab;

int main() {
  soak::SoakOptions opts = soak::SoakOptions::from_env();
  // Default the SLO CSV into the gitignored artifact directory instead of
  // littering the working tree; UFAB_SOAK_CSV still overrides.
  if (opts.csv_path.empty()) opts.csv_path = "bench_artifacts/soak_slo.csv";
  if (const auto parent = std::filesystem::path(opts.csv_path).parent_path();
      !parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      std::fprintf(stderr, "soak: cannot create %s: %s\n", parent.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }

  harness::print_header("soak: long-horizon production under rotating episodes");
  soak::SoakRunner runner(opts);
  const soak::SoakReport r = runner.run();

  std::printf("horizon              %.1f sim-s in %.1f wall-s (%.2fM events/s)\n",
              r.sim_seconds, r.wall_seconds,
              r.wall_seconds > 0 ? static_cast<double>(r.events) / r.wall_seconds / 1e6 : 0.0);
  std::printf("windows              %d (%d clean)\n", r.windows, r.clean_windows);
  std::printf("episodes             %d (%d reset recoveries measured)\n", r.episodes_total,
              r.recoveries_measured);
  std::printf("faults               downs=%lld loss_drops=%lld resets=%lld stale=%lld "
              "corrupt=%lld bloom_junk=%lld\n",
              static_cast<long long>(r.faults.link_downs),
              static_cast<long long>(r.faults.loss_drops),
              static_cast<long long>(r.faults.switch_resets),
              static_cast<long long>(r.faults.stale_records),
              static_cast<long long>(r.faults.corrupted_records),
              static_cast<long long>(r.faults.bloom_junk_keys));
  std::printf("slo                  violation_s=%.3f fct_p99=%.1fus wc_gap=%.4f "
              "recovery_p99=%.1f RTTs (%llu fct samples)\n",
              r.violation_seconds, r.fct_p99_us_clean, r.wc_gap_mean, r.recovery_p99_rtts,
              static_cast<unsigned long long>(r.fct_samples));
  std::printf("memory               peak_in_flight=%zu peak_pending=%zu "
              "meter_buckets<=%zu rtt_exact=%llu rtt_stream=%llu\n",
              r.peak_packets_in_flight, r.peak_pending_events, r.meter_buckets_retained_max,
              static_cast<unsigned long long>(r.rtt_exact_samples),
              static_cast<unsigned long long>(r.rtt_stream_samples));
  for (const auto& reason : r.forced_sequential) {
    std::printf("sequential           forced by %s\n", reason.c_str());
  }

  if (!r.slo_breaches.empty()) {
    std::printf("\nSLO BREACHES (%zu):\n", r.slo_breaches.size());
    for (const auto& b : r.slo_breaches) std::printf("  %s\n", b.c_str());
  }
  if (r.invariant_violations != 0) {
    std::printf("\nINVARIANT VIOLATIONS (%zu recorded of %zu):\n", r.violations.size(),
                r.invariant_violations);
    for (const auto& v : r.violations) {
      std::printf("  [%.3fs] %s: %s\n", v.at.sec(), v.invariant.c_str(), v.detail.c_str());
    }
  }
  std::printf("\nresult               %s\n", r.ok() ? "PASS" : "FAIL");
  return r.ok() ? 0 : 1;
}

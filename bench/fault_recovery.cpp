// Fault recovery micro-study: how fast does the uFAB edge re-register and
// re-converge after the informative core loses its state?
//
// A 2-leaf / 2-spine fabric carries backlogged 4 Gbps VFs.  At T every
// uFAB-C agent in the fabric is reset (registers + Bloom wiped), as a
// coordinated switch reboot would.  The edges are never told: the next probe
// simply re-registers (the wiped Bloom reports the pair unseen) and the
// two-stage admission re-converges from the rebuilt aggregates.  We report,
// per VF, the time from the reset until the delivered rate is back within
// 90% of its pre-fault mean, both in microseconds and in base RTTs, plus how
// long the fabric-wide sum of Phi_l registers takes to rebuild.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "src/faults/fault_plane.hpp"
#include "src/harness/experiment.hpp"
#include "src/harness/parallel_sweep.hpp"
#include "src/topo/builders.hpp"
#include "src/ufab/edge_agent.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;

namespace {

constexpr TimeNs kReset = 40_ms;
constexpr TimeNs kEnd = 80_ms;
constexpr TimeNs kBucket{50'000};  // 50 us metering buckets

struct PairRecovery {
  double prefault_gbps = 0.0;
  double recovery_us = -1.0;  // -1: never recovered in-run
  double recovery_rtts = -1.0;
};

struct RunResult {
  std::vector<PairRecovery> pairs;
  double phi_rebuild_us = -1.0;
  std::int64_t resets = 0;
};

RunResult run_once(std::uint64_t seed) {
  harness::Fabric fab([](sim::Simulator& s) { return topo::make_leaf_spine(s, 2, 2, 2); },
                      seed);
  fab.enable_observability(harness::obs_options_from_env());
  fab.instrument_cores({});
  edge::EdgeConfig cfg;
  for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
    const HostId host{static_cast<std::int32_t>(h)};
    fab.adopt_stack(host, std::make_unique<edge::EdgeAgent>(fab.net(), fab.vms(), host, cfg,
                                                            transport::TransportOptions{},
                                                            fab.rng().fork(h)));
  }
  fab.install_pair_metering(kBucket);
  fab.install_tenant_metering(kBucket);

  std::vector<VmPairId> pairs;
  for (int i = 0; i < 2; ++i) {
    const TenantId t = fab.vms().add_tenant("VF-" + std::to_string(i + 1), 4_Gbps);
    pairs.push_back(VmPairId{fab.vms().add_vm(t, HostId{i}), fab.vms().add_vm(t, HostId{2 + i})});
    fab.keep_backlogged(pairs.back(), 0_ms, kEnd);
  }

  faults::FaultPlane plane(fab, seed + 100);
  plane.attach_obs(*fab.observability());
  for (const sim::Switch* sw : fab.net().switches()) {
    plane.reset_switch_state(sw->id(), kReset);
  }
  plane.arm();

  // Sample the fabric-wide Phi_l sum on the metering grid so the rebuild
  // time can be read off after the run.
  std::vector<std::pair<TimeNs, double>> phi_series;
  for (TimeNs t = kReset - 1_ms; t < kEnd; t = t + kBucket) {
    fab.sim().at(t, [&fab, &phi_series, t] {
      double total = 0.0;
      for (const auto& a : fab.core_agents()) total += a->phi_total();
      phi_series.emplace_back(t, total);
    });
  }
  fab.sim().run_until(kEnd);

  RunResult r;
  for (const auto& a : fab.core_agents()) r.resets += a->resets();

  const double base_rtt_sec =
      fab.stack_as<edge::EdgeAgent>(HostId{0}).ufab_connection(pairs[0])->base_rtt.sec();

  for (const VmPairId pair : pairs) {
    PairRecovery pr;
    RateMeter* m = fab.pair_meter(pair);
    const auto series = m->series(kEnd);
    double pre_sum = 0.0;
    int pre_n = 0;
    for (const auto& s : series) {
      if (s.at >= 30_ms && s.at < kReset) {
        pre_sum += s.rate.bits_per_sec();
        ++pre_n;
      }
    }
    pr.prefault_gbps = pre_n > 0 ? pre_sum / pre_n / 1e9 : 0.0;
    // Recovered = first post-reset bucket from which 4 consecutive buckets
    // all deliver >= 90% of the pre-fault mean.
    const double bar = 0.9 * pre_sum / std::max(pre_n, 1);
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (series[i].at < kReset) continue;
      bool ok = true;
      for (std::size_t j = i; j < i + 4; ++j) {
        if (j >= series.size() || series[j].rate.bits_per_sec() < bar) {
          ok = false;
          break;
        }
      }
      if (ok) {
        pr.recovery_us = (series[i].at + m->bucket_width() - kReset).sec() * 1e6;
        pr.recovery_rtts = pr.recovery_us * 1e-6 / base_rtt_sec;
        break;
      }
    }
    r.pairs.push_back(pr);
  }

  // Phi rebuild: registers are empty right after the reset; find the first
  // sample back within 90% of the pre-reset level.
  double phi_pre = 0.0;
  for (const auto& [t, phi] : phi_series) {
    if (t < kReset) phi_pre = phi;
  }
  for (const auto& [t, phi] : phi_series) {
    if (t > kReset && phi >= 0.9 * phi_pre) {
      r.phi_rebuild_us = (t - kReset).sec() * 1e6;
      break;
    }
  }
  harness::write_bench_artifacts(fab, "fault_recovery", "seed" + std::to_string(seed));
  return r;
}

}  // namespace

int main() {
  harness::print_header(
      "Fault recovery — fabric-wide uFAB-C state reset at 40 ms (2 leaves x 2 spines, 2x4Gbps "
      "VFs, backlogged)");
  std::printf("%-6s %-6s %14s %14s %14s %16s %10s\n", "seed", "VF", "prefault_Gbps",
              "recovery_us", "recovery_RTTs", "phi_rebuild_us", "resets");
  const std::vector<std::uint64_t> seeds = {1, 2, 3};
  // One isolated fabric per seed: the sweep fans them over UFAB_JOBS workers
  // and the per-seed rows print here, serially, in seed order.
  const auto results = harness::parallel_sweep<RunResult>(
      static_cast<int>(seeds.size()),
      [&seeds](int i) { return run_once(seeds[static_cast<std::size_t>(i)]); });
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    const std::uint64_t seed = seeds[s];
    const RunResult& r = results[s];
    for (std::size_t i = 0; i < r.pairs.size(); ++i) {
      const auto& pr = r.pairs[i];
      std::printf("%-6llu %-6zu %14.2f %14.1f %14.1f %16.1f %10lld\n",
                  static_cast<unsigned long long>(seed), i + 1, pr.prefault_gbps, pr.recovery_us,
                  pr.recovery_rtts, r.phi_rebuild_us, static_cast<long long>(r.resets));
    }
  }
  return 0;
}

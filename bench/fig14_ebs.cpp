// Figure 14: EBS task completion times (storage scenario of §5.3).
//
// Storage Agents (S1-S4) stream 64 KB blocks to Block Agents (S5-S8) which
// replicate to three Chunk Servers, while a Garbage Collector does periodic
// read-modify-write cycles. Guarantees: SA 2 Gbps, BA 6 Gbps, GC 1 Gbps.
// Latency bound converted to 10 Gbps: 2 ms average / 10 ms tail.
#include <cstdio>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/workload/apps.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;
using workload::EbsApp;

namespace {

constexpr TimeNs kRun = 250_ms;

void run(Scheme scheme) {
  Experiment exp(
      scheme,
      [](sim::Simulator& s, const topo::FabricOptions& o) { return topo::make_testbed(s, o); },
      {}, {}, 23);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  const TenantId sa_t = vms.add_tenant("SA", 2_Gbps);
  const TenantId ba_t = vms.add_tenant("BA", 6_Gbps);
  const TenantId gc_t = vms.add_tenant("GC", 1_Gbps);
  std::vector<VmId> sas;
  std::vector<VmId> bas;
  std::vector<VmId> css;
  std::vector<VmId> gcs;
  for (int i = 0; i < 4; ++i) sas.push_back(vms.add_vm(sa_t, HostId{i}));
  for (int i = 0; i < 4; ++i) {
    bas.push_back(vms.add_vm(ba_t, HostId{4 + i}));
    css.push_back(vms.add_vm(ba_t, HostId{4 + i}));
    gcs.push_back(vms.add_vm(gc_t, HostId{4 + i}));
  }
  EbsApp::Config cfg;
  cfg.stop = kRun;
  EbsApp app(fab, sas, bas, css, gcs, cfg, fab.rng().fork("ebs"));
  fab.sim().run_until(kRun + 50_ms);

  std::printf("%-22s blocks=%5lld\n", harness::to_string(scheme),
              static_cast<long long>(app.blocks_completed()));
  const auto row = [](const char* task, const PercentileTracker& t) {
    if (t.empty()) {
      std::printf("  %-8s (no samples)\n", task);
      return;
    }
    std::printf("  %-8s avg=%8.2fms  p90=%8.2fms  p99=%8.2fms  max=%8.2fms\n", task, t.mean(),
                t.percentile(90), t.percentile(99), t.max());
  };
  row("SA", app.sa_tct_ms());
  row("BA", app.ba_tct_ms());
  row("Total", app.total_tct_ms());
  row("GC", app.gc_tct_ms());
  harness::write_bench_artifacts(fab, "fig14_ebs", harness::to_string(scheme));
}

}  // namespace

int main() {
  harness::print_header(
      "Figure 14 — EBS task completion time (SA 2G / BA 6G / GC 1G guarantees)");
  std::printf("latency bound (10G-converted): 2 ms average, 10 ms tail\n\n");
  for (const Scheme s : {Scheme::kPwc, Scheme::kEsClove, Scheme::kUfab}) run(s);
  std::printf(
      "\nExpected shape: uFAB completes I/O within the bound (avg << 2 ms, tail << 10 ms);\n"
      "the composites blow past the tail bound by an order of magnitude (21x/33x in\n"
      "the paper's testbed).\n");
  return 0;
}

// Figure 15a: fabric predictability at 100GE with failure recovery.
//
// Seven VFs with staircase guarantees (5/5/5/10/10/10/15 Gbps) join every
// 10 ms, all towards S8. At 90 ms the Core1 switch fails; uFAB detects the
// dead paths by probe loss and migrates the victims within a few RTTs.
#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/experiment.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;

int main() {
  harness::print_header("Figure 15a — 100GE predictability with Core1 failure at 90 ms (uFAB)");
  topo::FabricOptions opts;
  opts.host_bw = Bandwidth::gbps(100);
  opts.fabric_bw = Bandwidth::gbps(100);
  Experiment exp(
      Scheme::kUfab,
      [](sim::Simulator& s, const topo::FabricOptions& o) { return topo::make_testbed(s, o); },
      opts, {}, 3);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  const double guars[] = {5, 5, 5, 10, 10, 10, 15};
  std::vector<std::pair<std::string, VmPairId>> named;
  for (int i = 0; i < 7; ++i) {
    const TenantId t = vms.add_tenant("VF-" + std::to_string(i + 1), Bandwidth::gbps(guars[i]));
    const VmPairId pair{vms.add_vm(t, HostId{i % 7}), vms.add_vm(t, HostId{7})};
    named.emplace_back("VF" + std::to_string(i + 1) + "_" +
                           std::to_string(static_cast<int>(guars[i])) + "G",
                       pair);
    fab.keep_backlogged(pair, TimeNs{(i + 1) * 10'000'000LL}, 140_ms, 4'000'000);
  }

  // Core1 fails at 90 ms: every link touching Core1 goes down.
  fab.schedule_global(90_ms, [&fab] {
    for (sim::Link* l : fab.net().links()) {
      if (l->name().find("Core1") != std::string::npos) l->set_down(true);
    }
    std::printf("[90.0 ms] Core1 failed: all its links down\n");
  });

  PercentileTracker queues;
  fab.sample_queues(100_us, 140_ms, queues);
  fab.sim().run_until(140_ms);

  harness::print_rate_series(fab, named, 0_ms, 140_ms, 5_ms);
  std::int64_t migrations = 0;
  for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
    migrations += fab.stack_as<edge::EdgeAgent>(HostId{static_cast<std::int32_t>(h)}).migrations();
  }
  std::printf("\nmigrations=%lld\n", static_cast<long long>(migrations));
  harness::print_cdf_rows("queue length (bytes)", queues, "B");
  harness::write_bench_artifacts(fab, "fig15_hundred_gbe");
  std::printf(
      "\nExpected shape: each VF ramps to its guarantee within ~1 ms of joining;\n"
      "after the Core1 failure victims dip briefly and recover on surviving paths;\n"
      "queues stay near zero throughout (3 BDP bound).\n");
  return 0;
}

// Figure 5 (Case-2): utilization-oriented load balancing vs subscription-
// aware path selection.
//
// Three parallel spine paths carry three established VFs with different
// subscription/utilization mixes; a fourth VF joins mid-run. Clove steers it
// by congestion signals and can park it on a fully subscribed path (breaking
// guarantees, or oscillating at a 36 us flowlet gap); uFAB reads the
// subscription from the informative core and lands on the one path that can
// still serve the guarantee.
#include <cstdio>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/harness/parallel_sweep.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::GuaranteeSpec;
using harness::Scheme;

namespace {

struct Result {
  std::vector<double> steady_gbps;  // per VF, measured after F4 joined
  double dissatisfaction;
  std::int64_t migrations_or_switches;
};

Result run_case2(Scheme scheme, TimeNs flowlet_gap, std::uint64_t seed) {
  harness::SchemeOptions opts;
  opts.pwc.clove.flowlet_gap = flowlet_gap;
  opts.es.clove.flowlet_gap = flowlet_gap;
  Experiment exp(
      scheme,
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_leaf_spine(s, 2, 3, 4, o);
      },
      {}, opts, seed);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();

  // Four 4 Gbps VFs; three start staggered, the fourth joins at 100 ms.
  std::vector<VmPairId> pairs;
  for (int i = 0; i < 4; ++i) {
    const TenantId t = vms.add_tenant("VF-" + std::to_string(i + 1), 4_Gbps);
    pairs.push_back(VmPairId{vms.add_vm(t, HostId{i}), vms.add_vm(t, HostId{4 + i})});
  }
  for (int i = 0; i < 3; ++i) {
    fab.keep_backlogged(pairs[static_cast<std::size_t>(i)], TimeNs{i * 3'000'000LL}, 300_ms);
  }
  fab.keep_backlogged(pairs[3], 100_ms, 300_ms);
  fab.sim().run_until(300_ms);

  Result r;
  std::vector<GuaranteeSpec> specs;
  for (int i = 0; i < 4; ++i) {
    r.steady_gbps.push_back(exp.pair_rate_gbps(pairs[static_cast<std::size_t>(i)], 200_ms, 300_ms));
    specs.push_back(GuaranteeSpec{pairs[static_cast<std::size_t>(i)], 4e9,
                                  i < 3 ? TimeNs{i * 3'000'000LL + 5'000'000} : 120_ms, 300_ms});
  }
  r.dissatisfaction = harness::dissatisfaction_ratio(fab, specs, 300_ms);
  r.migrations_or_switches = 0;
  for (std::size_t h = 0; h < fab.net().host_count(); ++h) {
    if (scheme == Scheme::kUfab) {
      r.migrations_or_switches +=
          fab.stack_as<edge::EdgeAgent>(HostId{static_cast<std::int32_t>(h)}).migrations();
    }
  }
  harness::write_bench_artifacts(fab, "fig05_path_migration",
                                 std::string(harness::to_string(scheme)) + "-gap" +
                                     std::to_string(flowlet_gap.ns() / 1000) + "us");
  return r;
}

}  // namespace

int main() {
  harness::print_header(
      "Figure 5 (Case-2) — path selection for a joining VF (2 leaves x 3 spines, 4x4Gbps VFs)");
  std::printf("%-26s %10s %10s %10s %10s %14s %12s\n", "scheme", "VF1_Gbps", "VF2_Gbps",
              "VF3_Gbps", "VF4_Gbps", "dissatisfied", "migrations");
  struct Case {
    Scheme scheme;
    TimeNs gap;
    const char* label;
  };
  const Case cases[] = {
      {Scheme::kPwc, 200_us, "PWC (flowlet 200us)"},
      {Scheme::kPwc, 36_us, "PWC (flowlet 36us)"},
      {Scheme::kEsClove, 200_us, "ES+Clove (200us)"},
      {Scheme::kUfab, 200_us, "uFAB"},
  };
  // Independent cases (one Experiment each) fan out over UFAB_JOBS workers;
  // rows print here, serially, in case order.
  const auto results = harness::parallel_sweep<Result>(
      static_cast<int>(std::size(cases)),
      [&cases](int i) { return run_case2(cases[i].scheme, cases[i].gap, 77); });
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const Result& r = results[i];
    std::printf("%-26s %10.2f %10.2f %10.2f %10.2f %13.1f%% %12lld\n", cases[i].label,
                r.steady_gbps[0], r.steady_gbps[1], r.steady_gbps[2], r.steady_gbps[3],
                100.0 * r.dissatisfaction, static_cast<long long>(r.migrations_or_switches));
  }
  std::printf(
      "\nExpected shape: with 4x4 Gbps demands on 3x10 Gbps paths, uFAB places every VF\n"
      "on a path that can serve its guarantee (all >= ~4 Gbps, dissatisfaction ~0);\n"
      "the Clove-based composites converge on utilization and leave some VF below\n"
      "its guarantee (and oscillate at the 36 us gap).\n");
  return 0;
}

// Figure 15b: probing bandwidth overhead vs number of VM pairs.
//
// One VF saturates a 100G uplink with a growing number of VM pairs. The
// self-clocked scheme sends one probe per L_m transmitted bytes, so the
// overhead converges to ~L_p/(L_p+L_m) ~ 1.3% instead of growing with the
// pair count as a naive probe-per-RTT loop would.
#include <cstdio>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/harness/parallel_sweep.hpp"
#include "src/ufab/edge_agent.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;
using harness::Experiment;
using harness::Scheme;

namespace {

double measure_overhead(int n_pairs, std::uint64_t seed) {
  topo::FabricOptions opts;
  opts.host_bw = Bandwidth::gbps(100);
  opts.fabric_bw = Bandwidth::gbps(100);
  Experiment exp(
      Scheme::kUfab,
      [](sim::Simulator& s, const topo::FabricOptions& o) {
        return topo::make_dumbbell(s, 1, 1, o);
      },
      opts, {}, seed);
  exp.enable_observability(harness::obs_options_from_env());
  auto& fab = exp.fab();
  auto& vms = fab.vms();
  const TenantId t = vms.add_tenant("VF", Bandwidth::gbps(90));
  // n_pairs VM pairs of one VF, all saturating the same uplink.
  for (int i = 0; i < n_pairs; ++i) {
    const VmPairId pair{vms.add_vm(t, HostId{0}), vms.add_vm(t, HostId{1})};
    fab.keep_backlogged(pair, 0_ms, 20_ms, 2'000'000);
  }
  fab.sim().run_until(20_ms);

  auto& edge0 = fab.stack_as<edge::EdgeAgent>(HostId{0});
  // Overhead at the sender uplink: probe bytes over total bytes emitted.
  double uplink_bytes = 0.0;
  for (const sim::Link* l : fab.net().links()) {
    if (l->name() == "L0->ToR-L") uplink_bytes = static_cast<double>(l->tx_bytes_cum());
  }
  harness::write_bench_artifacts(fab, "fig15_probe_overhead",
                                 "pairs" + std::to_string(n_pairs));
  if (uplink_bytes <= 0.0) return 0.0;
  return 100.0 * static_cast<double>(edge0.probe_bytes_sent()) / uplink_bytes;
}

}  // namespace

int main() {
  harness::print_header("Figure 15b — probing bandwidth overhead vs #VM pairs (100GE, L_m=4KB)");
  std::printf("%10s %14s\n", "vm_pairs", "overhead_pct");
  const std::vector<int> counts = {1, 10, 100, 1000, 4000};
  // Independent runs fan out over UFAB_JOBS workers; rows print in order.
  const auto overheads = harness::parallel_sweep<double>(
      static_cast<int>(counts.size()),
      [&counts](int i) { return measure_overhead(counts[static_cast<std::size_t>(i)], 97); });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    std::printf("%10d %13.2f%%\n", counts[i], overheads[i]);
  }
  std::printf(
      "\nExpected shape: overhead rises with the first few pairs then plateaus at\n"
      "~L_p/(L_p+L_m) ~ 1.3-1.6%% — it does not grow with the number of VM pairs.\n");
  return 0;
}

// Figure 3 (motivation): load imbalance among equivalent uplinks caused by
// hash polarization.
//
// An aggregation tier with many equivalent uplinks spreads ECMP traffic; when
// every tier uses the same hash function (as with identical switch chips and
// few hash candidates), upstream choices correlate and the load collapses
// onto a few uplinks — the production pathology of §2.1.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/harness/fabric.hpp"
#include "src/topo/builders.hpp"

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;

namespace {

struct NullStack final : sim::HostStack {
  void on_packet(sim::PacketPtr) override {}
  sim::PacketPtr pull() override { return nullptr; }
};

std::vector<double> uplink_shares(bool polarized) {
  sim::Simulator sim;
  // Two-tier ECMP: 4 edge switches under 2 aggs, 12 cores above (24 agg
  // uplinks total, mirroring the paper's 24-uplink aggregation switch).
  auto net = topo::make_fat_tree(sim, 4, 1);
  net->set_hash_polarization(polarized);
  NullStack sink;
  for (std::size_t h = 0; h < net->host_count(); ++h) {
    net->host(HostId{static_cast<std::int32_t>(h)}).set_stack(&sink);
  }
  // 4000 distinct flows from pod-1 hosts to pod-3/4 hosts via ECMP.
  Rng rng(5);
  for (int f = 0; f < 4000; ++f) {
    const auto src = static_cast<std::int32_t>(rng.below(4));
    const auto dst = static_cast<std::int32_t>(8 + rng.below(8));
    auto pkt = sim::Packet::make(sim::PacketKind::kData, VmPairId{VmId{src}, VmId{dst}},
                                 TenantId{0}, HostId{src}, HostId{dst}, 1500);
    pkt->message_id = static_cast<std::uint64_t>(f);
    net->host(HostId{src}).send_control(std::move(pkt));
    sim.run();
  }
  // Only pod-1 aggs (Agg1/Agg2) carry this traffic upstream.
  std::vector<double> shares;
  double total = 0.0;
  for (const auto* l : net->links()) {
    if ((l->name().rfind("Agg1->Core", 0) == 0 || l->name().rfind("Agg2->Core", 0) == 0)) {
      shares.push_back(static_cast<double>(l->tx_bytes_cum()));
      total += static_cast<double>(l->tx_bytes_cum());
    }
  }
  for (double& s : shares) s = total > 0 ? 100.0 * s / total : 0.0;
  std::sort(shares.rbegin(), shares.rend());
  return shares;
}

void print_shares(const char* label, const std::vector<double>& shares) {
  std::printf("%-22s", label);
  int used = 0;
  for (const double s : shares) {
    std::printf(" %5.1f", s);
    if (s > 0.01) ++used;
  }
  std::printf("   (links carrying traffic: %d/%zu)\n", used, shares.size());
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 3 — ECMP load share per agg->core uplink (%% of bytes, sorted) ===\n");
  print_shares("healthy (per-switch)", uplink_shares(false));
  print_shares("polarized (shared)", uplink_shares(true));
  std::printf(
      "\nExpected shape: with per-switch hash salts the load spreads across all\n"
      "uplinks; with one shared hash function the same flows pick correlated\n"
      "uplinks at successive tiers and most links stay idle — the 10x imbalance\n"
      "of the production aggregation switch in Fig. 3.\n");
  return 0;
}

// Microbenchmarks for the hot data-plane data structures (google-benchmark):
// the switch Bloom filter, the WFQ scheduler, the event queue, and the
// per-probe INT processing path.
#include <benchmark/benchmark.h>

#include <thread>

#include "src/harness/experiment.hpp"
#include "src/sim/link.hpp"
#include "src/sim/node.hpp"
#include "src/sim/shard_sync.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/switch.hpp"
#include "src/telemetry/bloom.hpp"
#include "src/telemetry/core_agent.hpp"
#include "src/telemetry/int_codec.hpp"
#include "src/ufab/token_assigner.hpp"
#include "src/ufab/wfq.hpp"
#include "src/workload/sources.hpp"

namespace {

using namespace ufab;
using namespace ufab::time_literals;
using namespace ufab::unit_literals;

void BM_BloomInsert(benchmark::State& state) {
  telemetry::CountingBloomFilter bloom;
  std::uint64_t key = 1;
  for (auto _ : state) {
    bloom.insert(key++);
    if ((key & 0x3fff) == 0) bloom.clear();
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomLookup(benchmark::State& state) {
  telemetry::CountingBloomFilter bloom;
  for (std::uint64_t k = 0; k < 20'000; ++k) bloom.insert(k * 7919);
  std::uint64_t key = 1;
  bool hit = false;
  for (auto _ : state) {
    hit ^= bloom.maybe_contains(key++);
  }
  benchmark::DoNotOptimize(hit);
}
BENCHMARK(BM_BloomLookup);

void BM_WfqNext(benchmark::State& state) {
  edge::WfqScheduler wfq(1.0);
  const auto entities = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t e = 1; e <= entities; ++e) {
    const TenantId t{static_cast<std::int32_t>(e % 16)};
    wfq.set_tenant_weight(t, static_cast<double>(1 + e % 8));
    wfq.add(t, e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(wfq.next([](std::uint64_t) { return 1500; }));
  }
}
BENCHMARK(BM_WfqNext)->Arg(8)->Arg(64)->Arg(512);

void BM_EventQueue(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 1;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sim.at(TimeNs{t + (i * 7919) % 1000}, [] {});
    }
    sim.run();
    t += 1000;
  }
  benchmark::DoNotOptimize(sim.events_processed());
}
BENCHMARK(BM_EventQueue);

/// Dense tie-heavy pattern: bursts land in one calendar bucket (same-time
/// events exercise the FIFO tie-break path and per-bucket heap sifting).
void BM_EventQueueBurst(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 1;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sim.at(TimeNs{t + (i & 3)}, [] {});
    }
    sim.run();
    t += 50;
  }
  benchmark::DoNotOptimize(sim.events_processed());
}
BENCHMARK(BM_EventQueueBurst);

/// Far-horizon pattern: every event lands beyond the calendar's near window,
/// exercising the overflow tier, migration, and compaction.
void BM_EventQueueFarHorizon(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 1;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sim.at(TimeNs{t + 700'000 + i * 997}, [] {});
    }
    sim.run();
    t = sim.now().ns() + 1;
  }
  benchmark::DoNotOptimize(sim.events_processed());
}
BENCHMARK(BM_EventQueueFarHorizon);

/// Cross-shard handoff cost: one window's worth of mailbox posts, the single
/// release-store flush, and the receiver's acquire-drain.
void BM_ShardMailbox(benchmark::State& state) {
  sim::ShardMailbox<std::uint64_t> box;
  std::uint64_t sum = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 256; ++i) box.post(i);
    box.flush();
    box.drain([&sum](std::uint64_t v) { sum += v; });
    box.maybe_reset();
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_ShardMailbox);

/// Batched handoff at varying batch sizes: amortization of the publish —
/// posts are plain stores, so per-item cost should fall as the batch grows
/// (one release/acquire pair per batch, not per item).
void BM_MailboxBatch(benchmark::State& state) {
  sim::ShardMailbox<std::uint64_t> box;
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t sum = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < batch; ++i) box.post(i);
    box.flush();
    box.drain([&sum](std::uint64_t v) { sum += v; });
    box.maybe_reset();
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MailboxBatch)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

/// Full epoch-barrier round trip with three parked workers: release, three
/// empty passes, wait_all_done — the fixed synchronization overhead every
/// sharded epoch pays regardless of work.
void BM_EpochBarrier(benchmark::State& state) {
  constexpr int kWorkers = 3;
  sim::EpochBarrier barrier(kWorkers);
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&barrier] {
      std::uint64_t gen = 0;
      while (barrier.wait_for_pass(gen)) barrier.arrive_done();
    });
  }
  std::uint64_t gen = 0;
  for (auto _ : state) {
    barrier.release(++gen);
    barrier.wait_all_done();
  }
  barrier.shutdown();
  for (auto& t : workers) t.join();
}
BENCHMARK(BM_EpochBarrier)->UseRealTime();

/// Synchronization amortization end to end: a two-shard lookahead-limited
/// workload (self-rescheduling chains + periodic crossings) run to a fixed
/// horizon with N lookahead windows per coordinator barrier.  Arg(1) is the
/// legacy one-barrier-per-window cadence; higher args show the adaptive
/// engine's win.  Sequential executor so the number isolates epoch overhead
/// rather than thread scheduling noise.
void BM_AdaptiveEpoch(benchmark::State& state) {
  const int windows = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    sim.configure_shards(2, TimeNs{1'000}, sim::ShardExec::kSequential);
    sim.set_adaptive_epochs(windows > 1, windows);
    struct Chain {
      sim::Simulator* sim;
      int self;
      void fire() {
        if (sim->now() < TimeNs{400'000}) {
          sim->after(TimeNs{self == 0 ? 331 : 457}, [this] { fire(); });
        }
      }
    };
    Chain chains[2] = {{&sim, 0}, {&sim, 1}};
    for (int s = 0; s < 2; ++s) {
      const auto scope = sim.scoped(s);
      sim.at(TimeNs{10 + s}, [chain = &chains[s]] { chain->fire(); });
    }
    sim.run_until(TimeNs{500'000});
    events += sim.events_processed();
  }
  benchmark::DoNotOptimize(events);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_AdaptiveEpoch)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

/// Pooled packet make/destroy churn with realistic field traffic — the
/// per-packet cost transport and the links pay on every hop.
void BM_PacketMake(benchmark::State& state) {
  sim::Simulator sim;
  auto& pool = sim.packet_pool();
  for (auto _ : state) {
    sim::PacketPtr p =
        sim::make_packet(pool, sim::PacketKind::kData, VmPairId{VmId{1}, VmId{2}}, TenantId{0},
                         HostId{0}, HostId{1}, 1500);
    for (int h = 0; h < 4; ++h) p->route.push_back(h);
    p->seq = 4096;
    p->payload = 1400;
    benchmark::DoNotOptimize(p->id);
  }
  benchmark::DoNotOptimize(pool.recycled_total());
}
BENCHMARK(BM_PacketMake);

class NullNode final : public sim::Node {
 public:
  NullNode() : Node(NodeId{0}, "null") {}
  void receive(sim::PacketPtr) override {}
};

void BM_CoreAgentProbe(benchmark::State& state) {
  sim::Simulator sim;
  NullNode sink;
  sim::Link link(sim, LinkId{0}, "l", &sink, sim::LinkConfig{});
  telemetry::CoreConfig cfg;
  cfg.clean_period = TimeNs::zero();  // no sweeps during the benchmark
  telemetry::CoreAgent agent(sim, cfg);
  std::uint64_t key = 1;
  for (auto _ : state) {
    auto p = sim::Packet::make(sim::PacketKind::kProbe, VmPairId{VmId{1}, VmId{2}}, TenantId{0},
                               HostId{0}, HostId{1}, sim::kProbeBaseBytes);
    p->probe.reg_key = key;
    key = key % 8192 + 1;  // steady-state pair population
    p->probe.phi = 1e9;
    p->probe.window = 30'000;
    agent.on_probe_egress(*p, link, sim.now());
    benchmark::DoNotOptimize(p->telemetry.size());
  }
}
BENCHMARK(BM_CoreAgentProbe);

void BM_TokenAssignment(benchmark::State& state) {
  std::vector<edge::SenderPairView> pairs(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    pairs[i].demand_tokens = i % 3 == 0 ? 1e5 : 1e30;
    pairs[i].receiver_tokens = 1e9;
    pairs[i].receiver_known = i % 2 == 0;
  }
  for (auto _ : state) {
    edge::assign_tokens(1e10, pairs);
    benchmark::DoNotOptimize(pairs.back().assigned);
  }
}
BENCHMARK(BM_TokenAssignment)->Arg(8)->Arg(128);

/// A 1 ms slice of the fig17 workload (uFAB on a k=4 FatTree, websearch
/// sizes at load 0.5): the end-to-end engine benchmark — event queue, packet
/// pool, links, transport, and telemetry together.  Tracks the same path
/// scripts/run_perf.sh times at full scale.
void BM_Fig17Slice(benchmark::State& state) {
  for (auto _ : state) {
    harness::Experiment exp(
        harness::Scheme::kUfab,
        [](sim::Simulator& s, const topo::FabricOptions& o) {
          return topo::make_fat_tree(s, 4, 1, o);
        },
        {}, {}, 41);
    auto& fab = exp.fab();
    auto& vms = fab.vms();
    std::vector<VmPairId> pairs;
    Rng pair_rng = fab.rng().fork("pairs");
    const int hosts = static_cast<int>(fab.net().host_count());
    const TenantId tid = vms.add_tenant("T0", Bandwidth::gbps(1.0));
    std::vector<VmId> tvms;
    for (int h = 0; h < hosts; ++h) tvms.push_back(vms.add_vm(tid, HostId{h}));
    for (int h = 0; h < hosts; ++h) {
      int peer = static_cast<int>(pair_rng.below(static_cast<std::uint64_t>(hosts)));
      if (peer == h) peer = (peer + 1) % hosts;
      pairs.push_back(
          VmPairId{tvms[static_cast<std::size_t>(h)], tvms[static_cast<std::size_t>(peer)]});
    }
    workload::PoissonFlowGenerator::Config gcfg;
    gcfg.target_load = 0.5;
    gcfg.stop = 1_ms;
    workload::PoissonFlowGenerator gen(fab, pairs, workload::EmpiricalSizeDist::websearch(),
                                       gcfg, fab.rng().fork("flows"));
    fab.sim().run_until(1500_us);
    benchmark::DoNotOptimize(fab.sim().events_processed());
  }
}
BENCHMARK(BM_Fig17Slice)->Unit(benchmark::kMillisecond);

/// One busy link delivering bursts end to end, fused pipeline vs the legacy
/// two-event serializer (Arg: 1 = fused, 0 = legacy).  Both run in canonical
/// sharded mode so the only difference is the serializer itself; the fused
/// path should win on events scheduled (one calendar entry per busy link
/// instead of two per packet) and therefore on ns/packet (DESIGN.md §13).
void BM_LinkPipelineHop(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  constexpr int kBursts = 64;
  constexpr int kPerBurst = 8;
  for (auto _ : state) {
    sim::Simulator sim;
    sim.configure_shards(1, TimeNs::max(), sim::ShardExec::kSequential);
    sim.set_fused_links(fused);
    NullNode sink;
    sim::Link link(sim, LinkId{0}, "l", &sink,
                   sim::LinkConfig{Bandwidth::gbps(10.0), 1_us, 1 << 20, -1, 0.95});
    auto& pool = sim.packet_pool();
    for (int b = 0; b < kBursts; ++b) {
      sim.at(TimeNs{1 + b * 15'000}, [&link, &pool] {
        for (int i = 0; i < kPerBurst; ++i) {
          link.enqueue(sim::make_packet(pool, sim::PacketKind::kData,
                                        VmPairId{VmId{1}, VmId{2}}, TenantId{0}, HostId{0},
                                        HostId{1}, 1500));
        }
      });
    }
    sim.run();
    benchmark::DoNotOptimize(link.tx_bytes_cum());
  }
  state.SetItemsProcessed(state.iterations() * kBursts * kPerBurst);
}
BENCHMARK(BM_LinkPipelineHop)->Arg(0)->Arg(1);

/// The forwarding decision in isolation (Arg: 0 = source route consult,
/// 1 = legacy nested-vector ECMP walk, 2 = compiled flat FIB).  The flat FIB
/// turns the common single-path case into one dense array load and keeps the
/// multi-path hash bit-identical via a CSR candidate pool.
void BM_FlatFib(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  sim::Simulator sim;
  sim::Switch sw(sim, NodeId{0}, "sw");
  NullNode sink;
  constexpr int kPorts = 16;
  constexpr int kHosts = 256;
  for (int p = 0; p < kPorts; ++p) {
    sw.add_port(std::make_unique<sim::Link>(sim, LinkId{p}, "l", &sink, sim::LinkConfig{}));
  }
  for (int h = 0; h < kHosts; ++h) {
    if (h % 4 == 0) {
      sw.set_ecmp_ports(HostId{h}, {h % kPorts, (h + 5) % kPorts, (h + 11) % kPorts});
    } else {
      sw.set_ecmp_ports(HostId{h}, {h % kPorts});
    }
  }
  if (mode == 2) sw.compile_fib();
  auto pkt = sim::Packet::make(sim::PacketKind::kData, VmPairId{VmId{1}, VmId{2}}, TenantId{0},
                               HostId{0}, HostId{3}, 1500);
  for (int h = 0; h < 6; ++h) pkt->route.push_back((h * 3) % kPorts);
  std::int32_t acc = 0;
  int dst = 0;
  for (auto _ : state) {
    pkt->dst_host = HostId{dst};
    dst = (dst + 1) % kHosts;
    if (mode == 0) {
      // What receive() does for a source-routed packet: read route[hop].
      acc ^= pkt->route[static_cast<std::size_t>(pkt->hop)];
      pkt->hop = (pkt->hop + 1) % static_cast<std::int32_t>(pkt->route.size());
    } else {
      acc ^= sw.forwarding_port(*pkt);
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatFib)->Arg(0)->Arg(1)->Arg(2);

/// INT record quantization: the legacy wire-struct round trip (encode to the
/// packed struct, decode back) vs the fused in-place path used on probe
/// egress (same bit outcomes, no intermediate EncodedIntRecord).  Arg: 0 =
/// round trip, 1 = inline.
void BM_IntEncodeInline(benchmark::State& state) {
  const bool inline_path = state.range(0) != 0;
  sim::IntRecord proto;
  proto.link = LinkId{3};
  proto.phi_total = 2.5e9;
  proto.window_total = 1.8e8;
  proto.tx_bytes_cum = 123'456'789;
  proto.stamp = TimeNs{1'000'000};
  proto.tx_rate_hint = Bandwidth::gbps(7.3);
  proto.queue_bytes = 48'000;
  proto.capacity = Bandwidth::gbps(10.0);
  const int cls = telemetry::IntCodec::speed_class(proto.capacity);
  for (auto _ : state) {
    sim::IntRecord rec = proto;
    if (inline_path) {
      telemetry::IntCodec::quantize_inline(rec, cls);
    } else {
      telemetry::IntCodec::quantize(rec);
    }
    benchmark::DoNotOptimize(rec.queue_bytes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntEncodeInline)->Arg(0)->Arg(1);

/// Cost of one enabled ProfScope token (two clock reads + slice add) — the
/// per-call price of every level-2 detailed scope (WFQ next, telemetry
/// ingest, mailbox post).  Level-1 loop attribution pays one such pair only
/// every timing_stride events (counts stay exact), so this number divided by
/// the stride bounds the profiler's per-event overhead; the run_perf.sh
/// guard checks the realized end-to-end figure.
void BM_ProfScope(benchmark::State& state) {
  obs::ProfSlice slice;
  for (auto _ : state) {
    const obs::ProfScope scope(&slice, obs::ProfCat::kWfq);
    benchmark::DoNotOptimize(&slice);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScope);

/// The same token with profiling off (null slice): the cost left behind in
/// hot paths that carry a permanent UFAB_PROF_SCOPE — a pointer test, no
/// clock reads.
void BM_ProfScopeDisabled(benchmark::State& state) {
  for (auto _ : state) {
    const obs::ProfScope scope(nullptr, obs::ProfCat::kWfq);
    benchmark::DoNotOptimize(&state);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfScopeDisabled);

}  // namespace
